"""Fixed-size (MPF) and variable-size (MPL) memory pools.

The pools model allocation accounting (how many blocks / bytes are in use and
who is waiting) rather than real addresses: ``tk_get_mpf`` returns an opaque
block handle that must be passed back to ``tk_rel_mpf``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.tkernel.errors import E_CTX, E_OK, E_PAR, E_TMOUT
from repro.tkernel.objects import KernelObject, ObjectTable, WaitQueue
from repro.tkernel.types import TMO_FEVR, TMO_POL, TTW_MPF, TTW_MPL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS


@dataclass(frozen=True)
class MemoryBlock:
    """An opaque handle for one allocated block."""

    pool_id: int
    block_id: int
    size: int


class FixedMemoryPool(KernelObject):
    """A pool of fixed-size memory blocks."""

    object_type = "fixed_pool"

    def __init__(self, object_id: int, name: str, attributes: int,
                 block_count: int, block_size: int, exinf=None):
        super().__init__(object_id, name, attributes, exinf)
        self.block_count = block_count
        self.block_size = block_size
        self.allocated: Dict[int, MemoryBlock] = {}
        self.wait_queue = WaitQueue(attributes)
        self._ids = itertools.count(1)

    def free_blocks(self) -> int:
        """Number of blocks still available."""
        return self.block_count - len(self.allocated)

    def allocate(self) -> Optional[MemoryBlock]:
        """Take one block, or None if the pool is exhausted."""
        if self.free_blocks() <= 0:
            return None
        block = MemoryBlock(self.object_id, next(self._ids), self.block_size)
        self.allocated[block.block_id] = block
        return block

    def release(self, block: MemoryBlock) -> bool:
        """Return a block; False if it was not allocated from this pool."""
        return self.allocated.pop(block.block_id, None) is not None


class VariableMemoryPool(KernelObject):
    """A pool of variable-size memory blocks."""

    object_type = "variable_pool"

    def __init__(self, object_id: int, name: str, attributes: int,
                 pool_size: int, exinf=None):
        super().__init__(object_id, name, attributes, exinf)
        self.pool_size = pool_size
        self.used_bytes = 0
        self.allocated: Dict[int, MemoryBlock] = {}
        self.wait_queue = WaitQueue(attributes)
        self._ids = itertools.count(1)

    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.pool_size - self.used_bytes

    def allocate(self, size: int) -> Optional[MemoryBlock]:
        """Take *size* bytes, or None if not enough space remains."""
        if size > self.free_bytes():
            return None
        block = MemoryBlock(self.object_id, next(self._ids), size)
        self.allocated[block.block_id] = block
        self.used_bytes += size
        return block

    def release(self, block: MemoryBlock) -> bool:
        """Return a block; False if it was not allocated from this pool."""
        stored = self.allocated.pop(block.block_id, None)
        if stored is None:
            return False
        self.used_bytes -= stored.size
        return True


class MemoryPoolManager:
    """Implements both the fixed (MPF) and variable (MPL) pool service calls."""

    def __init__(self, kernel: "TKernelOS", max_pools: int = 256):
        self.kernel = kernel
        self.fixed_table: ObjectTable[FixedMemoryPool] = ObjectTable(max_pools)
        self.variable_table: ObjectTable[VariableMemoryPool] = ObjectTable(max_pools)

    def all_fixed_pools(self) -> List[FixedMemoryPool]:
        """All live fixed-size pools."""
        return self.fixed_table.all()

    def all_variable_pools(self) -> List[VariableMemoryPool]:
        """All live variable-size pools."""
        return self.variable_table.all()

    # ------------------------------------------------------------------
    # Fixed-size pools
    # ------------------------------------------------------------------
    def tk_cre_mpf(self, mpfcnt: int, blfsz: int, name: str = "",
                   mpfatr: int = 0, exinf=None):
        """Create a fixed-size pool of *mpfcnt* blocks of *blfsz* bytes."""
        yield from self.kernel._svc_enter("tk_cre_mpf")
        try:
            if mpfcnt <= 0 or blfsz <= 0:
                return E_PAR
            result = self.fixed_table.add(
                lambda oid: FixedMemoryPool(oid, name or f"mpf{oid}", mpfatr, mpfcnt, blfsz, exinf)
            )
            if isinstance(result, int):
                return result
            return result.object_id
        finally:
            self.kernel._svc_exit()

    def tk_del_mpf(self, mpfid: int):
        """Delete a fixed-size pool."""
        yield from self.kernel._svc_enter("tk_del_mpf")
        try:
            pool = self.fixed_table.require(mpfid)
            if isinstance(pool, int):
                return pool
            self.kernel._release_all_waiters(pool.wait_queue)
            self.fixed_table.delete(mpfid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_get_mpf(self, mpfid: int, tmout: int = TMO_FEVR):
        """Get a block; returns ``(E_OK, MemoryBlock)`` or ``(error, None)``."""
        yield from self.kernel._svc_enter("tk_get_mpf")
        try:
            pool = self.fixed_table.require(mpfid)
            if isinstance(pool, int):
                return pool, None
            if not pool.wait_queue:
                block = pool.allocate()
                if block is not None:
                    return E_OK, block
            if tmout == TMO_POL:
                return E_TMOUT, None
            tcb = self.kernel.tasks.current_tcb()
            if tcb is None:
                return E_CTX, None
            ercd = yield from self.kernel._wait_here(
                tcb,
                factor=TTW_MPF,
                object_id=mpfid,
                tmout=tmout,
                queue=pool.wait_queue,
            )
            if ercd != E_OK:
                return ercd, None
            return E_OK, tcb.last_wait_result
        finally:
            self.kernel._svc_exit()

    def tk_rel_mpf(self, mpfid: int, block: MemoryBlock):
        """Release a block back to its pool."""
        yield from self.kernel._svc_enter("tk_rel_mpf")
        try:
            pool = self.fixed_table.require(mpfid)
            if isinstance(pool, int):
                return pool
            if block is None or block.pool_id != mpfid or not pool.release(block):
                return E_PAR
            waiter = pool.wait_queue.pop()
            if waiter is not None:
                new_block = pool.allocate()
                self.kernel._release_wait(waiter, E_OK, result=new_block)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_ref_mpf(self, mpfid: int):
        """Reference a fixed-size pool's state."""
        yield from self.kernel._svc_enter("tk_ref_mpf")
        try:
            pool = self.fixed_table.require(mpfid)
            if isinstance(pool, int):
                return pool
            return {
                "mpfid": pool.object_id,
                "name": pool.name,
                "exinf": pool.exinf,
                "frbcnt": pool.free_blocks(),
                "blfsz": pool.block_size,
                "mpfcnt": pool.block_count,
                "wtsk": pool.wait_queue.waiting_task_ids(),
            }
        finally:
            self.kernel._svc_exit()

    # ------------------------------------------------------------------
    # Variable-size pools
    # ------------------------------------------------------------------
    def tk_cre_mpl(self, mplsz: int, name: str = "", mplatr: int = 0, exinf=None):
        """Create a variable-size pool of *mplsz* bytes."""
        yield from self.kernel._svc_enter("tk_cre_mpl")
        try:
            if mplsz <= 0:
                return E_PAR
            result = self.variable_table.add(
                lambda oid: VariableMemoryPool(oid, name or f"mpl{oid}", mplatr, mplsz, exinf)
            )
            if isinstance(result, int):
                return result
            return result.object_id
        finally:
            self.kernel._svc_exit()

    def tk_del_mpl(self, mplid: int):
        """Delete a variable-size pool."""
        yield from self.kernel._svc_enter("tk_del_mpl")
        try:
            pool = self.variable_table.require(mplid)
            if isinstance(pool, int):
                return pool
            self.kernel._release_all_waiters(pool.wait_queue)
            self.variable_table.delete(mplid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_get_mpl(self, mplid: int, blksz: int, tmout: int = TMO_FEVR):
        """Get *blksz* bytes; returns ``(E_OK, MemoryBlock)`` or ``(error, None)``."""
        yield from self.kernel._svc_enter("tk_get_mpl")
        try:
            pool = self.variable_table.require(mplid)
            if isinstance(pool, int):
                return pool, None
            if blksz <= 0 or blksz > pool.pool_size:
                return E_PAR, None
            if not pool.wait_queue:
                block = pool.allocate(blksz)
                if block is not None:
                    return E_OK, block
            if tmout == TMO_POL:
                return E_TMOUT, None
            tcb = self.kernel.tasks.current_tcb()
            if tcb is None:
                return E_CTX, None
            ercd = yield from self.kernel._wait_here(
                tcb,
                factor=TTW_MPL,
                object_id=mplid,
                tmout=tmout,
                queue=pool.wait_queue,
                data={"size": blksz},
            )
            if ercd != E_OK:
                return ercd, None
            return E_OK, tcb.last_wait_result
        finally:
            self.kernel._svc_exit()

    def tk_rel_mpl(self, mplid: int, block: MemoryBlock):
        """Release a variable-size block back to its pool."""
        yield from self.kernel._svc_enter("tk_rel_mpl")
        try:
            pool = self.variable_table.require(mplid)
            if isinstance(pool, int):
                return pool
            if block is None or block.pool_id != mplid or not pool.release(block):
                return E_PAR
            self._serve_waiters(pool)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def _serve_waiters(self, pool: VariableMemoryPool) -> None:
        while pool.wait_queue:
            head = pool.wait_queue.peek()
            assert head is not None
            size = head.data["size"]
            block = pool.allocate(size)
            if block is None:
                break
            pool.wait_queue.pop()
            self.kernel._release_wait(head, E_OK, result=block)

    def tk_ref_mpl(self, mplid: int):
        """Reference a variable-size pool's state."""
        yield from self.kernel._svc_enter("tk_ref_mpl")
        try:
            pool = self.variable_table.require(mplid)
            if isinstance(pool, int):
                return pool
            return {
                "mplid": pool.object_id,
                "name": pool.name,
                "exinf": pool.exinf,
                "frsz": pool.free_bytes(),
                "maxsz": pool.pool_size,
                "wtsk": pool.wait_queue.waiting_task_ids(),
            }
        finally:
            self.kernel._svc_exit()
