"""Alarm handlers (tk_cre_alm, tk_sta_alm, tk_stp_alm, tk_ref_alm).

An alarm handler is a one-shot time-event handler: ``tk_sta_alm(almid, t)``
arms it to run once *t* milliseconds later.  Like cyclic handlers it runs in
the task-independent context (the paper's H2 handler).
"""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from repro.core.events import ThreadKind
from repro.core.tthread import TThread
from repro.tkernel.cyclic import HandlerFunction
from repro.tkernel.errors import E_OK, E_PAR
from repro.tkernel.objects import KernelObject, ObjectTable
from repro.tkernel.timemgmt import TimerHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS


class AlarmHandler(KernelObject):
    """One alarm handler object."""

    object_type = "alarm_handler"

    def __init__(self, object_id: int, name: str, attributes: int,
                 handler_fn: HandlerFunction, exinf=None):
        super().__init__(object_id, name, attributes, exinf)
        self.handler_fn = handler_fn
        self.armed = False
        self.thread: Optional[TThread] = None
        self.activation_count = 0
        self.timer_handle: Optional[TimerHandle] = None

    def __repr__(self) -> str:
        return (
            f"AlarmHandler(id={self.object_id}, armed={self.armed}, "
            f"activations={self.activation_count})"
        )


class AlarmHandlerManager:
    """Implements the alarm-handler service calls."""

    def __init__(self, kernel: "TKernelOS", max_handlers: int = 64):
        self.kernel = kernel
        self.table: ObjectTable[AlarmHandler] = ObjectTable(max_handlers)

    def all_handlers(self) -> List[AlarmHandler]:
        """All live alarm handlers ordered by identifier."""
        return self.table.all()

    # ------------------------------------------------------------------
    # Service calls
    # ------------------------------------------------------------------
    def tk_cre_alm(self, handler_fn: HandlerFunction, name: str = "",
                   almatr: int = 0, exinf=None):
        """Create an alarm handler; returns its id or an error code."""
        yield from self.kernel._svc_enter("tk_cre_alm")
        try:
            result = self.table.add(
                lambda oid: AlarmHandler(oid, name or f"alm{oid}", almatr, handler_fn, exinf)
            )
            if isinstance(result, int):
                return result
            alarm = result
            alarm.thread = self.kernel.api.create_thread(
                alarm.name,
                self._body_factory(alarm),
                priority=0,
                kind=ThreadKind.ALARM_HANDLER,
            )
            return alarm.object_id
        finally:
            self.kernel._svc_exit()

    def _body_factory(self, alarm: AlarmHandler):
        def factory():
            yield from alarm.handler_fn(alarm.exinf)

        return factory

    def tk_sta_alm(self, almid: int, almtim: int):
        """Arm the alarm to fire once after *almtim* milliseconds."""
        yield from self.kernel._svc_enter("tk_sta_alm")
        try:
            alarm = self.table.require(almid)
            if isinstance(alarm, int):
                return alarm
            if almtim < 0:
                return E_PAR
            self.kernel.time.cancel(alarm.timer_handle)
            alarm.armed = True
            alarm.timer_handle = self.kernel.time.after_ms(
                self.kernel.simulator.now,
                almtim,
                lambda: self._activate(alarm),
                label=f"alm{almid}",
            )
            return E_OK
        finally:
            self.kernel._svc_exit()

    def _activate(self, alarm: AlarmHandler) -> None:
        if alarm.object_id not in self.table or not alarm.armed:
            return
        alarm.armed = False
        alarm.activation_count += 1
        assert alarm.thread is not None
        self.kernel.api.activate_handler(alarm.thread)

    def tk_stp_alm(self, almid: int):
        """Disarm the alarm."""
        yield from self.kernel._svc_enter("tk_stp_alm")
        try:
            alarm = self.table.require(almid)
            if isinstance(alarm, int):
                return alarm
            alarm.armed = False
            self.kernel.time.cancel(alarm.timer_handle)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_del_alm(self, almid: int):
        """Delete an alarm handler."""
        yield from self.kernel._svc_enter("tk_del_alm")
        try:
            alarm = self.table.require(almid)
            if isinstance(alarm, int):
                return alarm
            alarm.armed = False
            self.kernel.time.cancel(alarm.timer_handle)
            if alarm.thread is not None:
                self.kernel.api.remove_thread(alarm.thread)
            self.table.delete(almid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_ref_alm(self, almid: int):
        """Reference an alarm handler's state."""
        yield from self.kernel._svc_enter("tk_ref_alm")
        try:
            alarm = self.table.require(almid)
            if isinstance(alarm, int):
                return alarm
            left = None
            if alarm.armed and alarm.timer_handle is not None:
                left = (alarm.timer_handle.due - self.kernel.simulator.now).to_ms()
            return {
                "almid": alarm.object_id,
                "name": alarm.name,
                "exinf": alarm.exinf,
                "almstat": int(alarm.armed),
                "lfttim": left,
                "activations": alarm.activation_count,
            }
        finally:
            self.kernel._svc_exit()
