"""Message buffers (tk_cre_mbf, tk_snd_mbf, tk_rcv_mbf, ...).

Unlike mailboxes, a message buffer *copies* messages into bounded storage,
so senders can block when the buffer is full.  Message sizes are modelled as
byte counts supplied by the caller (the payload itself is any Python object).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, TYPE_CHECKING

from repro.tkernel.errors import E_CTX, E_OK, E_PAR, E_TMOUT
from repro.tkernel.objects import KernelObject, ObjectTable, WaitQueue
from repro.tkernel.types import TMO_FEVR, TMO_POL, TTW_RMBF, TTW_SMBF

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS


@dataclass
class BufferedMessage:
    """One message stored in a message buffer."""

    payload: Any
    size: int


class MessageBuffer(KernelObject):
    """A bounded message buffer with blocking send and receive."""

    object_type = "message_buffer"

    def __init__(self, object_id: int, name: str, attributes: int,
                 bufsz: int, maxmsz: int, exinf=None):
        super().__init__(object_id, name, attributes, exinf)
        self.buffer_size = bufsz
        self.max_message_size = maxmsz
        self.used_bytes = 0
        self.messages: List[BufferedMessage] = []
        self.send_queue = WaitQueue(attributes)
        self.receive_queue = WaitQueue(attributes)

    def free_bytes(self) -> int:
        """Bytes still available in the buffer."""
        return self.buffer_size - self.used_bytes

    def __repr__(self) -> str:
        return (
            f"MessageBuffer(id={self.object_id}, used={self.used_bytes}/"
            f"{self.buffer_size}, msgs={len(self.messages)})"
        )


class MessageBufferManager:
    """Implements the message-buffer service calls."""

    def __init__(self, kernel: "TKernelOS", max_buffers: int = 256):
        self.kernel = kernel
        self.table: ObjectTable[MessageBuffer] = ObjectTable(max_buffers)

    def all_buffers(self) -> List[MessageBuffer]:
        """All live message buffers ordered by identifier."""
        return self.table.all()

    # ------------------------------------------------------------------
    # Service calls
    # ------------------------------------------------------------------
    def tk_cre_mbf(self, bufsz: int = 1024, maxmsz: int = 64, name: str = "",
                   mbfatr: int = 0, exinf=None):
        """Create a message buffer; returns its id or an error code."""
        yield from self.kernel._svc_enter("tk_cre_mbf")
        try:
            if bufsz <= 0 or maxmsz <= 0 or maxmsz > bufsz:
                return E_PAR
            result = self.table.add(
                lambda oid: MessageBuffer(oid, name or f"mbf{oid}", mbfatr, bufsz, maxmsz, exinf)
            )
            if isinstance(result, int):
                return result
            return result.object_id
        finally:
            self.kernel._svc_exit()

    def tk_del_mbf(self, mbfid: int):
        """Delete a message buffer; waiting tasks are released with E_DLT."""
        yield from self.kernel._svc_enter("tk_del_mbf")
        try:
            buffer = self.table.require(mbfid)
            if isinstance(buffer, int):
                return buffer
            self.kernel._release_all_waiters(buffer.send_queue)
            self.kernel._release_all_waiters(buffer.receive_queue)
            self.table.delete(mbfid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_snd_mbf(self, mbfid: int, payload: Any, size: int = 1,
                   tmout: int = TMO_FEVR):
        """Send a message of *size* bytes, blocking while the buffer is full."""
        yield from self.kernel._svc_enter("tk_snd_mbf")
        try:
            buffer = self.table.require(mbfid)
            if isinstance(buffer, int):
                return buffer
            if size <= 0 or size > buffer.max_message_size:
                return E_PAR

            # Direct hand-off to a waiting receiver bypasses the storage.
            receiver = buffer.receive_queue.pop()
            if receiver is not None:
                self.kernel._release_wait(receiver, E_OK, result=(payload, size))
                return E_OK

            if buffer.free_bytes() >= size and not buffer.send_queue:
                self._store(buffer, payload, size)
                return E_OK
            if tmout == TMO_POL:
                return E_TMOUT
            tcb = self.kernel.tasks.current_tcb()
            if tcb is None:
                return E_CTX
            ercd = yield from self.kernel._wait_here(
                tcb,
                factor=TTW_SMBF,
                object_id=mbfid,
                tmout=tmout,
                queue=buffer.send_queue,
                data={"payload": payload, "size": size},
            )
            return ercd
        finally:
            self.kernel._svc_exit()

    def _store(self, buffer: MessageBuffer, payload: Any, size: int) -> None:
        buffer.messages.append(BufferedMessage(payload, size))
        buffer.used_bytes += size

    def _serve_senders(self, buffer: MessageBuffer) -> None:
        """Admit queued senders while space is available."""
        while buffer.send_queue:
            head = buffer.send_queue.peek()
            assert head is not None
            size = head.data["size"]
            if size > buffer.free_bytes():
                break
            buffer.send_queue.pop()
            self._store(buffer, head.data["payload"], size)
            self.kernel._release_wait(head, E_OK)

    def tk_rcv_mbf(self, mbfid: int, tmout: int = TMO_FEVR):
        """Receive the oldest message; returns ``(E_OK, payload, size)``."""
        yield from self.kernel._svc_enter("tk_rcv_mbf")
        try:
            buffer = self.table.require(mbfid)
            if isinstance(buffer, int):
                return buffer, None, 0
            if buffer.messages:
                message = buffer.messages.pop(0)
                buffer.used_bytes -= message.size
                self._serve_senders(buffer)
                return E_OK, message.payload, message.size
            if tmout == TMO_POL:
                return E_TMOUT, None, 0
            tcb = self.kernel.tasks.current_tcb()
            if tcb is None:
                return E_CTX, None, 0
            ercd = yield from self.kernel._wait_here(
                tcb,
                factor=TTW_RMBF,
                object_id=mbfid,
                tmout=tmout,
                queue=buffer.receive_queue,
            )
            if ercd != E_OK:
                return ercd, None, 0
            payload, size = tcb.last_wait_result
            return E_OK, payload, size
        finally:
            self.kernel._svc_exit()

    def tk_ref_mbf(self, mbfid: int):
        """Reference a message buffer's state."""
        yield from self.kernel._svc_enter("tk_ref_mbf")
        try:
            buffer = self.table.require(mbfid)
            if isinstance(buffer, int):
                return buffer
            return {
                "mbfid": buffer.object_id,
                "name": buffer.name,
                "exinf": buffer.exinf,
                "msgcnt": len(buffer.messages),
                "frbufsz": buffer.free_bytes(),
                "maxmsz": buffer.max_message_size,
                "stsk": buffer.send_queue.waiting_task_ids(),
                "wtsk": buffer.receive_queue.waiting_task_ids(),
            }
        finally:
            self.kernel._svc_exit()
