"""Cyclic handlers (tk_cre_cyc, tk_sta_cyc, tk_stp_cyc, tk_ref_cyc).

A cyclic handler is a time-event handler activated periodically by the timer
handler.  Each activation runs as a handler T-THREAD in the task-independent
context (on top of SIM_Stack), exactly like the paper's H1 handler in the
video-game case study.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, TYPE_CHECKING

from repro.core.events import ThreadKind
from repro.core.tthread import TThread
from repro.tkernel.errors import E_OBJ, E_OK, E_PAR
from repro.tkernel.objects import KernelObject, ObjectTable
from repro.tkernel.timemgmt import TimerHandle
from repro.tkernel.types import TA_PHS, TA_STA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS

#: Signature of a time-event handler function.
HandlerFunction = Callable[[Any], Generator[object, object, None]]


class CyclicHandler(KernelObject):
    """One cyclic handler object."""

    object_type = "cyclic_handler"

    def __init__(self, object_id: int, name: str, attributes: int,
                 handler_fn: HandlerFunction, cyctim: int, cycphs: int, exinf=None):
        super().__init__(object_id, name, attributes, exinf)
        self.handler_fn = handler_fn
        self.cycle_time_ms = cyctim
        self.phase_ms = cycphs
        self.active = bool(attributes & TA_STA)
        self.thread: Optional[TThread] = None
        self.activation_count = 0
        self.timer_handle: Optional[TimerHandle] = None

    def __repr__(self) -> str:
        return (
            f"CyclicHandler(id={self.object_id}, period={self.cycle_time_ms} ms, "
            f"active={self.active}, activations={self.activation_count})"
        )


class CyclicHandlerManager:
    """Implements the cyclic-handler service calls."""

    def __init__(self, kernel: "TKernelOS", max_handlers: int = 64):
        self.kernel = kernel
        self.table: ObjectTable[CyclicHandler] = ObjectTable(max_handlers)

    def all_handlers(self) -> List[CyclicHandler]:
        """All live cyclic handlers ordered by identifier."""
        return self.table.all()

    # ------------------------------------------------------------------
    # Service calls
    # ------------------------------------------------------------------
    def tk_cre_cyc(self, handler_fn: HandlerFunction, cyctim: int,
                   cycphs: int = 0, name: str = "", cycatr: int = 0, exinf=None):
        """Create a cyclic handler; returns its id or an error code."""
        yield from self.kernel._svc_enter("tk_cre_cyc")
        try:
            if cyctim <= 0 or cycphs < 0:
                return E_PAR
            result = self.table.add(
                lambda oid: CyclicHandler(
                    oid, name or f"cyc{oid}", cycatr, handler_fn, cyctim, cycphs, exinf
                )
            )
            if isinstance(result, int):
                return result
            cyc = result
            cyc.thread = self.kernel.api.create_thread(
                cyc.name,
                self._body_factory(cyc),
                priority=0,
                kind=ThreadKind.CYCLIC_HANDLER,
            )
            if cyc.active:
                self._schedule_next(cyc, initial=True)
            return cyc.object_id
        finally:
            self.kernel._svc_exit()

    def _body_factory(self, cyc: CyclicHandler):
        def factory():
            yield from cyc.handler_fn(cyc.exinf)

        return factory

    def _schedule_next(self, cyc: CyclicHandler, initial: bool = False) -> None:
        delay_ms = cyc.phase_ms if initial and cyc.phase_ms else cyc.cycle_time_ms
        now = self.kernel.simulator.now
        cyc.timer_handle = self.kernel.time.after_ms(
            now, delay_ms, lambda: self._activate(cyc), label=f"cyc{cyc.object_id}"
        )

    def _activate(self, cyc: CyclicHandler) -> None:
        if cyc.object_id not in self.table or not cyc.active:
            return
        cyc.activation_count += 1
        assert cyc.thread is not None
        self.kernel.api.activate_handler(cyc.thread)
        self._schedule_next(cyc)

    def tk_sta_cyc(self, cycid: int):
        """Start (activate) a cyclic handler."""
        yield from self.kernel._svc_enter("tk_sta_cyc")
        try:
            cyc = self.table.require(cycid)
            if isinstance(cyc, int):
                return cyc
            if not cyc.active:
                cyc.active = True
                self._schedule_next(cyc, initial=True)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_stp_cyc(self, cycid: int):
        """Stop a cyclic handler."""
        yield from self.kernel._svc_enter("tk_stp_cyc")
        try:
            cyc = self.table.require(cycid)
            if isinstance(cyc, int):
                return cyc
            cyc.active = False
            self.kernel.time.cancel(cyc.timer_handle)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_del_cyc(self, cycid: int):
        """Delete a cyclic handler."""
        yield from self.kernel._svc_enter("tk_del_cyc")
        try:
            cyc = self.table.require(cycid)
            if isinstance(cyc, int):
                return cyc
            cyc.active = False
            self.kernel.time.cancel(cyc.timer_handle)
            if cyc.thread is not None:
                self.kernel.api.remove_thread(cyc.thread)
            self.table.delete(cycid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_ref_cyc(self, cycid: int):
        """Reference a cyclic handler's state."""
        yield from self.kernel._svc_enter("tk_ref_cyc")
        try:
            cyc = self.table.require(cycid)
            if isinstance(cyc, int):
                return cyc
            next_due = None
            if cyc.timer_handle is not None and not cyc.timer_handle.fired \
                    and not cyc.timer_handle.cancelled:
                next_due = (cyc.timer_handle.due - self.kernel.simulator.now).to_ms()
            return {
                "cycid": cyc.object_id,
                "name": cyc.name,
                "exinf": cyc.exinf,
                "cycstat": int(cyc.active),
                "cyctim": cyc.cycle_time_ms,
                "lfttim": next_due,
                "activations": cyc.activation_count,
            }
        finally:
            self.kernel._svc_exit()
