"""Mutexes with priority inheritance / ceiling (tk_cre_mtx, tk_loc_mtx, ...)."""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.tkernel.errors import E_CTX, E_ILUSE, E_OBJ, E_OK, E_PAR, E_TMOUT
from repro.tkernel.objects import KernelObject, ObjectTable, WaitQueue
from repro.tkernel.types import (
    MAX_TASK_PRIORITY,
    MIN_TASK_PRIORITY,
    TA_CEILING,
    TA_INHERIT,
    TMO_FEVR,
    TMO_POL,
    TTW_MTX,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS
    from repro.tkernel.task import TaskControlBlock


class Mutex(KernelObject):
    """A mutual-exclusion lock owned by at most one task."""

    object_type = "mutex"

    def __init__(self, object_id: int, name: str, attributes: int,
                 ceilpri: int = MIN_TASK_PRIORITY, exinf=None):
        super().__init__(object_id, name, attributes, exinf)
        self.ceiling_priority = ceilpri
        self.owner: "Optional[TaskControlBlock]" = None
        self.wait_queue = WaitQueue(attributes)

    @property
    def protocol(self) -> str:
        """The locking protocol: ``inherit``, ``ceiling`` or ``fifo``."""
        if self.attributes & TA_CEILING == TA_CEILING:
            return "ceiling"
        if self.attributes & TA_INHERIT == TA_INHERIT:
            return "inherit"
        return "fifo"

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner else None
        return f"Mutex(id={self.object_id}, owner={owner!r}, waiting={len(self.wait_queue)})"


class MutexManager:
    """Implements the mutex service calls."""

    def __init__(self, kernel: "TKernelOS", max_mutexes: int = 256):
        self.kernel = kernel
        self.table: ObjectTable[Mutex] = ObjectTable(max_mutexes)

    def all_mutexes(self) -> List[Mutex]:
        """All live mutexes ordered by identifier."""
        return self.table.all()

    # ------------------------------------------------------------------
    # Service calls
    # ------------------------------------------------------------------
    def tk_cre_mtx(self, name: str = "", mtxatr: int = TA_INHERIT,
                   ceilpri: int = MIN_TASK_PRIORITY, exinf=None):
        """Create a mutex; returns its id or an error code."""
        yield from self.kernel._svc_enter("tk_cre_mtx")
        try:
            if not MIN_TASK_PRIORITY <= ceilpri <= MAX_TASK_PRIORITY:
                return E_PAR
            result = self.table.add(
                lambda oid: Mutex(oid, name or f"mtx{oid}", mtxatr, ceilpri, exinf)
            )
            if isinstance(result, int):
                return result
            return result.object_id
        finally:
            self.kernel._svc_exit()

    def tk_del_mtx(self, mtxid: int):
        """Delete a mutex; waiting tasks are released with E_DLT."""
        yield from self.kernel._svc_enter("tk_del_mtx")
        try:
            mutex = self.table.require(mtxid)
            if isinstance(mutex, int):
                return mutex
            if mutex.owner is not None:
                self._restore_owner_priority(mutex.owner, mutex)
                mutex.owner.locked_mutexes = [
                    m for m in mutex.owner.locked_mutexes if m is not mutex
                ]
            self.kernel._release_all_waiters(mutex.wait_queue)
            self.table.delete(mtxid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_loc_mtx(self, mtxid: int, tmout: int = TMO_FEVR):
        """Lock a mutex, waiting up to *tmout* milliseconds."""
        yield from self.kernel._svc_enter("tk_loc_mtx")
        try:
            mutex = self.table.require(mtxid)
            if isinstance(mutex, int):
                return mutex
            tcb = self.kernel.tasks.current_tcb()
            if tcb is None:
                return E_CTX
            if mutex.owner is tcb:
                return E_ILUSE  # recursive locking is not allowed
            if mutex.owner is None:
                self._acquire(mutex, tcb)
                return E_OK
            if tmout == TMO_POL:
                return E_TMOUT
            if mutex.protocol == "inherit":
                self._apply_inheritance(mutex, tcb)
            ercd = yield from self.kernel._wait_here(
                tcb,
                factor=TTW_MTX,
                object_id=mtxid,
                tmout=tmout,
                queue=mutex.wait_queue,
            )
            # On E_OK the releasing task already transferred ownership to us.
            return ercd
        finally:
            self.kernel._svc_exit()

    def _acquire(self, mutex: Mutex, tcb: "TaskControlBlock") -> None:
        mutex.owner = tcb
        tcb.locked_mutexes.append(mutex)
        if mutex.protocol == "ceiling" and tcb.priority > mutex.ceiling_priority:
            self.kernel._set_task_priority(tcb, mutex.ceiling_priority, base_change=False)

    def _apply_inheritance(self, mutex: Mutex, waiter: "TaskControlBlock") -> None:
        owner = mutex.owner
        if owner is not None and waiter.priority < owner.priority:
            self.kernel._set_task_priority(owner, waiter.priority, base_change=False)

    def tk_unl_mtx(self, mtxid: int):
        """Unlock a mutex owned by the invoking task."""
        yield from self.kernel._svc_enter("tk_unl_mtx")
        try:
            mutex = self.table.require(mtxid)
            if isinstance(mutex, int):
                return mutex
            tcb = self.kernel.tasks.current_tcb()
            if tcb is None:
                return E_CTX
            if mutex.owner is not tcb:
                return E_ILUSE
            self._release(mutex, tcb)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def _release(self, mutex: Mutex, owner: "TaskControlBlock") -> None:
        owner.locked_mutexes = [m for m in owner.locked_mutexes if m is not mutex]
        self._restore_owner_priority(owner, mutex)
        mutex.owner = None
        next_entry = mutex.wait_queue.pop()
        if next_entry is not None:
            self._acquire(mutex, next_entry.tcb)
            self.kernel._release_wait(next_entry, E_OK)

    def _restore_owner_priority(self, owner: "TaskControlBlock", released: Mutex) -> None:
        """Recompute the owner's priority after releasing *released*."""
        target = owner.itskpri
        for mutex in owner.locked_mutexes:
            if mutex is released:
                continue
            if mutex.protocol == "ceiling":
                target = min(target, mutex.ceiling_priority)
            elif mutex.protocol == "inherit":
                for entry in mutex.wait_queue:
                    target = min(target, entry.tcb.priority)
        if owner.priority != target:
            self.kernel._set_task_priority(owner, target, base_change=False)

    def release_all_owned_by(self, tcb: "TaskControlBlock") -> None:
        """Release every mutex owned by *tcb* (task exit / termination)."""
        for mutex in list(tcb.locked_mutexes):
            self._release(mutex, tcb)

    def tk_ref_mtx(self, mtxid: int):
        """Reference a mutex's state."""
        yield from self.kernel._svc_enter("tk_ref_mtx")
        try:
            mutex = self.table.require(mtxid)
            if isinstance(mutex, int):
                return mutex
            return {
                "mtxid": mutex.object_id,
                "name": mutex.name,
                "exinf": mutex.exinf,
                "htsk": mutex.owner.tskid if mutex.owner else 0,
                "wtsk": mutex.wait_queue.waiting_task_ids(),
                "protocol": mutex.protocol,
                "ceilpri": mutex.ceiling_priority,
            }
        finally:
            self.kernel._svc_exit()
