"""RTK-Spec TRON — a behavioural simulation model of the T-Kernel/OS.

This package models the T-Kernel/OS (the ITRON-heritage kernel of the
T-Engine platform) on top of the SIM_API library: priority-based preemptive
scheduling, tasks, semaphores, event flags, mutexes, mailboxes, message
buffers, fixed and variable memory pools, system time with cyclic and alarm
handlers, interrupt handling, and the T-Kernel/DS debugger-support view.

The public entry point is :class:`repro.tkernel.kernel.TKernelOS`.  Service
calls follow the T-Kernel naming (``tk_cre_tsk``, ``tk_wai_sem``, ...), are
implemented as generators (call them with ``yield from`` inside a task body)
and return T-Kernel error codes (negative) or object identifiers (positive).
"""

from repro.tkernel.errors import (
    E_CTX,
    E_DLT,
    E_ID,
    E_ILUSE,
    E_LIMIT,
    E_NOEXS,
    E_NOMEM,
    E_NOSPT,
    E_OBJ,
    E_OK,
    E_PAR,
    E_QOVR,
    E_RLWAI,
    E_RSATR,
    E_TMOUT,
    error_name,
    is_error,
)
from repro.tkernel.types import (
    TA_CEILING,
    TA_CLR,
    TA_HLNG,
    TA_INHERIT,
    TA_STA,
    TA_TFIFO,
    TA_TPRI,
    TA_WMUL,
    TA_WSGL,
    TMO_FEVR,
    TMO_POL,
    TSK_SELF,
    TTS_DMT,
    TTS_RDY,
    TTS_RUN,
    TTS_SUS,
    TTS_WAI,
    TTS_WAS,
    TWF_ANDW,
    TWF_BITCLR,
    TWF_CLR,
    TWF_ORW,
)
from repro.tkernel.kernel import TKernelOS
from repro.tkernel.debugger import TKernelDS

__all__ = [
    "TKernelOS",
    "TKernelDS",
    "E_OK",
    "E_ID",
    "E_NOEXS",
    "E_OBJ",
    "E_PAR",
    "E_CTX",
    "E_QOVR",
    "E_RLWAI",
    "E_TMOUT",
    "E_DLT",
    "E_NOMEM",
    "E_LIMIT",
    "E_ILUSE",
    "E_NOSPT",
    "E_RSATR",
    "error_name",
    "is_error",
    "TA_TFIFO",
    "TA_TPRI",
    "TA_HLNG",
    "TA_WSGL",
    "TA_WMUL",
    "TA_CLR",
    "TA_STA",
    "TA_INHERIT",
    "TA_CEILING",
    "TMO_POL",
    "TMO_FEVR",
    "TSK_SELF",
    "TTS_RUN",
    "TTS_RDY",
    "TTS_WAI",
    "TTS_SUS",
    "TTS_WAS",
    "TTS_DMT",
    "TWF_ANDW",
    "TWF_ORW",
    "TWF_CLR",
    "TWF_BITCLR",
]
