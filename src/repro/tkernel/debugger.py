"""T-Kernel/DS — the debugger-support component (Fig. 8).

The paper's structure (Fig. 1) includes *T-Kernel/DS*, which "acts as a
debugger that references different resources and kernel internal states".
:class:`TKernelDS` provides exactly that view: snapshots of every kernel
object, the running task, the interrupt nesting level and resource usage,
plus a plain-text listing in the spirit of the paper's Fig. 8 output.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from repro.tkernel.types import task_state_name, wait_factor_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS


class TKernelDS:
    """Read-only debugger view over a :class:`TKernelOS` instance."""

    def __init__(self, kernel: "TKernelOS"):
        self.kernel = kernel

    # ------------------------------------------------------------------
    # Structured snapshots
    # ------------------------------------------------------------------
    def task_snapshot(self) -> List[Dict]:
        """State of every task."""
        kernel = self.kernel
        running = kernel.api.running
        rows = []
        for tcb in kernel.tasks.all_tasks():
            rows.append({
                "tskid": tcb.tskid,
                "name": tcb.name,
                "pri": tcb.priority,
                "base_pri": tcb.base_priority,
                "state": tcb.state_name(running),
                "wait": wait_factor_name(tcb.wait_factor),
                "wait_obj": tcb.wait_object_id,
                "wupcnt": tcb.wupcnt,
                "suscnt": tcb.suscnt,
                "cet_ms": tcb.thread.consumed_execution_time.to_ms() if tcb.thread else 0.0,
                "cee_mj": tcb.thread.token.consumed_execution_energy_mj if tcb.thread else 0.0,
            })
        return rows

    def semaphore_snapshot(self) -> List[Dict]:
        """State of every semaphore."""
        return [
            {
                "semid": sem.object_id,
                "name": sem.name,
                "count": sem.count,
                "max": sem.max_count,
                "waiting": sem.wait_queue.waiting_task_ids(),
            }
            for sem in self.kernel.semaphores.all_semaphores()
        ]

    def eventflag_snapshot(self) -> List[Dict]:
        """State of every event flag."""
        return [
            {
                "flgid": flag.object_id,
                "name": flag.name,
                "pattern": flag.pattern,
                "waiting": flag.wait_queue.waiting_task_ids(),
            }
            for flag in self.kernel.eventflags.all_flags()
        ]

    def mutex_snapshot(self) -> List[Dict]:
        """State of every mutex."""
        return [
            {
                "mtxid": mutex.object_id,
                "name": mutex.name,
                "owner": mutex.owner.tskid if mutex.owner else 0,
                "protocol": mutex.protocol,
                "waiting": mutex.wait_queue.waiting_task_ids(),
            }
            for mutex in self.kernel.mutexes.all_mutexes()
        ]

    def mailbox_snapshot(self) -> List[Dict]:
        """State of every mailbox."""
        return [
            {
                "mbxid": mbx.object_id,
                "name": mbx.name,
                "messages": len(mbx.messages),
                "sent": mbx.sent_count,
                "received": mbx.received_count,
                "waiting": mbx.wait_queue.waiting_task_ids(),
            }
            for mbx in self.kernel.mailboxes.all_mailboxes()
        ]

    def message_buffer_snapshot(self) -> List[Dict]:
        """State of every message buffer."""
        return [
            {
                "mbfid": mbf.object_id,
                "name": mbf.name,
                "messages": len(mbf.messages),
                "used_bytes": mbf.used_bytes,
                "buffer_size": mbf.buffer_size,
                "senders_waiting": mbf.send_queue.waiting_task_ids(),
                "receivers_waiting": mbf.receive_queue.waiting_task_ids(),
            }
            for mbf in self.kernel.message_buffers.all_buffers()
        ]

    def memory_pool_snapshot(self) -> List[Dict]:
        """State of every memory pool (fixed and variable)."""
        pools = []
        for pool in self.kernel.memory_pools.all_fixed_pools():
            pools.append({
                "kind": "fixed",
                "id": pool.object_id,
                "name": pool.name,
                "free_blocks": pool.free_blocks(),
                "block_count": pool.block_count,
                "block_size": pool.block_size,
                "waiting": pool.wait_queue.waiting_task_ids(),
            })
        for pool in self.kernel.memory_pools.all_variable_pools():
            pools.append({
                "kind": "variable",
                "id": pool.object_id,
                "name": pool.name,
                "free_bytes": pool.free_bytes(),
                "pool_size": pool.pool_size,
                "waiting": pool.wait_queue.waiting_task_ids(),
            })
        return pools

    def handler_snapshot(self) -> List[Dict]:
        """State of every cyclic, alarm and interrupt handler."""
        rows = []
        for cyc in self.kernel.cyclics.all_handlers():
            rows.append({
                "kind": "cyclic",
                "id": cyc.object_id,
                "name": cyc.name,
                "active": cyc.active,
                "period_ms": cyc.cycle_time_ms,
                "activations": cyc.activation_count,
            })
        for alarm in self.kernel.alarms.all_handlers():
            rows.append({
                "kind": "alarm",
                "id": alarm.object_id,
                "name": alarm.name,
                "armed": alarm.armed,
                "activations": alarm.activation_count,
            })
        for isr in self.kernel.interrupts.all_handlers():
            rows.append({
                "kind": "interrupt",
                "id": isr.intno,
                "name": isr.name,
                "enabled": isr.enabled,
                "activations": isr.activation_count,
            })
        return rows

    def system_snapshot(self) -> Dict:
        """Overall system state (running task, nesting level, counters)."""
        kernel = self.kernel
        running_tcb = kernel.tasks.current_tcb()
        return {
            "now_ms": kernel.simulator.now.to_ms(),
            "system_time_ms": kernel.time.get_system_time(),
            "booted": kernel.booted,
            "running_task": running_tcb.name if running_tcb else None,
            "interrupt_nesting": kernel.api.stack.depth,
            "dispatch_count": kernel.api.dispatch_count,
            "preemption_count": kernel.api.preemption_count,
            "interrupt_count": kernel.api.interrupt_count,
            "service_calls": dict(kernel.service_call_counts),
            "task_count": len(kernel.tasks.all_tasks()),
            "semaphore_count": len(kernel.semaphores.all_semaphores()),
            "flag_count": len(kernel.eventflags.all_flags()),
            "mailbox_count": len(kernel.mailboxes.all_mailboxes()),
        }

    # ------------------------------------------------------------------
    # Fig. 8 style plain-text listing
    # ------------------------------------------------------------------
    def render_listing(self) -> str:
        """A T-Kernel/DS output listing of kernel objects and their states."""
        kernel = self.kernel
        lines: List[str] = []
        lines.append("=== T-Kernel/DS object listing ===")
        system = self.system_snapshot()
        lines.append(
            f"time {system['now_ms']:.0f} ms   systime {system['system_time_ms']} ms   "
            f"running {system['running_task'] or '-'}   "
            f"intnest {system['interrupt_nesting']}"
        )
        lines.append("-- tasks --")
        lines.append(" id  name             pri  state  wait  wup  sus   CET[ms]   CEE[mJ]")
        for row in self.task_snapshot():
            lines.append(
                f"{row['tskid']:>3}  {row['name']:<16} {row['pri']:>4}  "
                f"{row['state']:<5}  {row['wait']:<4}  {row['wupcnt']:>3}  {row['suscnt']:>3}  "
                f"{row['cet_ms']:>8.2f}  {row['cee_mj']:>8.4f}"
            )
        if self.semaphore_snapshot():
            lines.append("-- semaphores --")
            for row in self.semaphore_snapshot():
                lines.append(
                    f"{row['semid']:>3}  {row['name']:<16} count {row['count']}/{row['max']}"
                    f"  waiting {row['waiting']}"
                )
        if self.eventflag_snapshot():
            lines.append("-- event flags --")
            for row in self.eventflag_snapshot():
                lines.append(
                    f"{row['flgid']:>3}  {row['name']:<16} pattern 0x{row['pattern']:08X}"
                    f"  waiting {row['waiting']}"
                )
        if self.mutex_snapshot():
            lines.append("-- mutexes --")
            for row in self.mutex_snapshot():
                lines.append(
                    f"{row['mtxid']:>3}  {row['name']:<16} owner {row['owner']}"
                    f" ({row['protocol']})  waiting {row['waiting']}"
                )
        if self.mailbox_snapshot():
            lines.append("-- mailboxes --")
            for row in self.mailbox_snapshot():
                lines.append(
                    f"{row['mbxid']:>3}  {row['name']:<16} msgs {row['messages']}"
                    f" (sent {row['sent']}, rcvd {row['received']})  waiting {row['waiting']}"
                )
        if self.message_buffer_snapshot():
            lines.append("-- message buffers --")
            for row in self.message_buffer_snapshot():
                lines.append(
                    f"{row['mbfid']:>3}  {row['name']:<16} msgs {row['messages']}"
                    f"  used {row['used_bytes']}/{row['buffer_size']} bytes"
                )
        if self.memory_pool_snapshot():
            lines.append("-- memory pools --")
            for row in self.memory_pool_snapshot():
                if row["kind"] == "fixed":
                    usage = f"free blocks {row['free_blocks']}/{row['block_count']}"
                else:
                    usage = f"free bytes {row['free_bytes']}/{row['pool_size']}"
                lines.append(f"{row['id']:>3}  {row['name']:<16} {row['kind']:<8} {usage}")
        if self.handler_snapshot():
            lines.append("-- time-event & interrupt handlers --")
            for row in self.handler_snapshot():
                detail = ""
                if row["kind"] == "cyclic":
                    detail = f"period {row['period_ms']} ms, active {row['active']}"
                elif row["kind"] == "alarm":
                    detail = f"armed {row['armed']}"
                else:
                    detail = f"enabled {row['enabled']}"
                lines.append(
                    f"{row['id']:>3}  {row['name']:<16} {row['kind']:<9} {detail}"
                    f"  activations {row['activations']}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TKernelDS(kernel={self.kernel.name!r})"
