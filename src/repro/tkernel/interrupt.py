"""External interrupt management (tk_def_int, interrupt dispatch helpers).

``tk_def_int(intno, handler_fn)`` registers an interrupt service routine for
an interrupt number.  The kernel's *Interrupt Dispatch* process (Fig. 3)
identifies external interrupts raised by the interrupt controller and calls
the SIM_API library to notify the dedicated handler T-THREAD, which then runs
in the task-independent context with full nesting support (SIM_Stack).
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.events import ThreadKind
from repro.core.tthread import TThread
from repro.tkernel.cyclic import HandlerFunction
from repro.tkernel.errors import E_NOEXS, E_OK, E_PAR
from repro.tkernel.objects import KernelObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS


class InterruptHandler(KernelObject):
    """One registered interrupt service routine."""

    object_type = "interrupt_handler"

    def __init__(self, intno: int, name: str, handler_fn: HandlerFunction, exinf=None):
        super().__init__(intno, name, 0, exinf)
        self.intno = intno
        self.handler_fn = handler_fn
        self.thread: Optional[TThread] = None
        self.activation_count = 0
        self.enabled = True

    def __repr__(self) -> str:
        return (
            f"InterruptHandler(intno={self.intno}, enabled={self.enabled}, "
            f"activations={self.activation_count})"
        )


class InterruptManager:
    """Implements interrupt definition and dispatch."""

    def __init__(self, kernel: "TKernelOS"):
        self.kernel = kernel
        self._handlers: Dict[int, InterruptHandler] = {}
        self.spurious_count = 0
        self._obs_irq = kernel.api.obs.topic("irq")

    def all_handlers(self) -> List[InterruptHandler]:
        """All registered handlers ordered by interrupt number."""
        return [self._handlers[n] for n in sorted(self._handlers)]

    # ------------------------------------------------------------------
    # Service calls
    # ------------------------------------------------------------------
    def tk_def_int(self, intno: int, handler_fn: Optional[HandlerFunction],
                   name: str = "", exinf=None):
        """Define (or, with ``handler_fn=None``, undefine) an ISR for *intno*."""
        yield from self.kernel._svc_enter("tk_def_int")
        try:
            if intno < 0:
                return E_PAR
            if handler_fn is None:
                existing = self._handlers.pop(intno, None)
                if existing is None:
                    return E_NOEXS
                if existing.thread is not None:
                    self.kernel.api.remove_thread(existing.thread)
                return E_OK
            handler = InterruptHandler(intno, name or f"isr{intno}", handler_fn, exinf)
            handler.thread = self.kernel.api.create_thread(
                handler.name,
                self._body_factory(handler),
                priority=0,
                kind=ThreadKind.INTERRUPT_HANDLER,
            )
            self._handlers[intno] = handler
            return E_OK
        finally:
            self.kernel._svc_exit()

    def _body_factory(self, handler: InterruptHandler):
        def factory():
            yield from handler.handler_fn(handler.exinf)

        return factory

    def tk_ena_int(self, intno: int):
        """Enable an interrupt line."""
        yield from self.kernel._svc_enter("tk_ena_int")
        try:
            handler = self._handlers.get(intno)
            if handler is None:
                return E_NOEXS
            handler.enabled = True
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_dis_int(self, intno: int):
        """Disable an interrupt line (raised interrupts are dropped)."""
        yield from self.kernel._svc_enter("tk_dis_int")
        try:
            handler = self._handlers.get(intno)
            if handler is None:
                return E_NOEXS
            handler.enabled = False
            return E_OK
        finally:
            self.kernel._svc_exit()

    # ------------------------------------------------------------------
    # Dispatch (called by the kernel's Interrupt Dispatch process)
    # ------------------------------------------------------------------
    def dispatch(self, intno: int) -> bool:
        """Notify the ISR for *intno*; returns whether one was registered."""
        handler = self._handlers.get(intno)
        topic = self._obs_irq
        if handler is None or not handler.enabled:
            self.spurious_count += 1
            if topic.enabled:
                topic.emit(
                    "spurious", self.kernel.simulator.now.nanoseconds, intno=intno
                )
            return False
        handler.activation_count += 1
        assert handler.thread is not None
        if topic.enabled:
            topic.emit(
                "dispatch", self.kernel.simulator.now.nanoseconds,
                intno=intno, handler=handler.name,
            )
        self.kernel.api.notify_interrupt(handler.thread)
        return True

    def handler_for(self, intno: int) -> Optional[InterruptHandler]:
        """The registered handler for *intno*, if any."""
        return self._handlers.get(intno)
