"""T-Kernel / μ-ITRON error codes.

Service calls return a non-negative value on success (``E_OK`` or an object
identifier) and a negative error code on failure, exactly as the T-Kernel
specification defines.  Only the codes that the simulation model can actually
produce are listed.
"""

from __future__ import annotations

#: Normal completion.
E_OK = 0

#: System error (internal inconsistency).
E_SYS = -5
#: Unsupported function.
E_NOSPT = -9
#: Reserved attribute (invalid object attribute bits).
E_RSATR = -11
#: Parameter error.
E_PAR = -17
#: Invalid ID number.
E_ID = -18
#: Context error (e.g. a blocking call issued from a handler).
E_CTX = -25
#: Memory access violation.
E_MACV = -26
#: Object access violation.
E_OACV = -27
#: Illegal service call use (e.g. unlocking a mutex one does not own).
E_ILUSE = -28
#: Insufficient memory.
E_NOMEM = -33
#: Number of objects exceeds the system limit.
E_LIMIT = -34
#: Object state error (e.g. starting a task that is not dormant).
E_OBJ = -41
#: Object does not exist.
E_NOEXS = -42
#: Queueing overflow (e.g. wakeup request count limit).
E_QOVR = -43
#: Wait released forcibly (tk_rel_wai).
E_RLWAI = -49
#: Polling failure or timeout.
E_TMOUT = -50
#: The waited-on object was deleted.
E_DLT = -51
#: Wait disabled.
E_DISWAI = -52

_NAMES = {
    E_OK: "E_OK",
    E_SYS: "E_SYS",
    E_NOSPT: "E_NOSPT",
    E_RSATR: "E_RSATR",
    E_PAR: "E_PAR",
    E_ID: "E_ID",
    E_CTX: "E_CTX",
    E_MACV: "E_MACV",
    E_OACV: "E_OACV",
    E_ILUSE: "E_ILUSE",
    E_NOMEM: "E_NOMEM",
    E_LIMIT: "E_LIMIT",
    E_OBJ: "E_OBJ",
    E_NOEXS: "E_NOEXS",
    E_QOVR: "E_QOVR",
    E_RLWAI: "E_RLWAI",
    E_TMOUT: "E_TMOUT",
    E_DLT: "E_DLT",
    E_DISWAI: "E_DISWAI",
}


def error_name(code: int) -> str:
    """Human-readable name of an error code (or the number itself)."""
    if code >= 0:
        return "E_OK" if code == 0 else f"ID({code})"
    return _NAMES.get(code, f"E_UNKNOWN({code})")


def is_error(code: int) -> bool:
    """Whether *code* signals an error (negative return value)."""
    return code < 0


class KernelPanic(RuntimeError):
    """Raised for internal inconsistencies of the simulation model itself.

    Application-level failures never raise; they return error codes.  A
    panic means the model detected a broken invariant (a bug, not a
    simulated condition).
    """
