"""System time and the timer queue.

The paper's kernel dynamics (Fig. 3): *"The timer handler updates the system
clock, checks for cyclic, alarm events, or task resuming events in the timer
queue, it then calls simulation library APIs to start running a task/handler
or preempt the running task..."*

:class:`TimeManager` is that timer queue.  The kernel's Thread Dispatch
process calls :meth:`TimeManager.process_due` on every system tick; due
entries run their actions (waking a task, activating a cyclic/alarm handler).
System time is kept in milliseconds and can be adjusted with ``tk_set_tim``
without disturbing relative timeouts (which are stored against simulation
time, not calendar time).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.sysc.time import SimTime


@dataclass(slots=True)
class TimerHandle:
    """Handle for one scheduled timer action (cancellable)."""

    due: SimTime
    sequence: int
    action: Callable[[], None]
    cancelled: bool = False
    fired: bool = False
    label: str = ""

    def cancel(self) -> None:
        """Prevent the action from running (no-op if already fired)."""
        self.cancelled = True


class TimeManager:
    """The kernel's timer queue plus the settable system time."""

    def __init__(self, tick: "SimTime | int" = SimTime.ms(1)):
        self.tick = SimTime.coerce(tick)
        self._sequence = itertools.count()
        self._queue: List[Tuple[int, int, TimerHandle]] = []
        #: Offset added to operation time to obtain calendar system time (ms).
        self._system_time_offset_ms = 0
        #: Operation time: milliseconds since boot, advanced by the tick handler.
        self.operation_time_ms = 0
        self.tick_count = 0
        self.processed_count = 0

    # -- system time --------------------------------------------------------
    def set_system_time(self, time_ms: int) -> None:
        """Set the calendar system time (tk_set_tim)."""
        self._system_time_offset_ms = time_ms - self.operation_time_ms

    def get_system_time(self) -> int:
        """Current calendar system time in milliseconds (tk_get_tim)."""
        return self.operation_time_ms + self._system_time_offset_ms

    def get_operation_time(self) -> int:
        """Milliseconds since boot (tk_get_otm)."""
        return self.operation_time_ms

    # -- timer queue -----------------------------------------------------------
    def after(
        self, now: SimTime, delay: "SimTime | int", action: Callable[[], None], label: str = ""
    ) -> TimerHandle:
        """Schedule *action* to run *delay* after *now* (at a tick boundary)."""
        delay = SimTime.coerce(delay)
        if delay.nanoseconds < 0:
            raise ValueError("timer delay cannot be negative")
        handle = TimerHandle(now + delay, next(self._sequence), action, label=label)
        heapq.heappush(self._queue, (handle.due.to_ns(), handle.sequence, handle))
        return handle

    def after_ms(
        self, now: SimTime, delay_ms: int, action: Callable[[], None], label: str = ""
    ) -> TimerHandle:
        """Schedule *action* after *delay_ms* milliseconds."""
        return self.after(now, SimTime.ms(delay_ms), action, label=label)

    def cancel(self, handle: Optional[TimerHandle]) -> None:
        """Cancel a previously scheduled action."""
        if handle is not None:
            handle.cancel()

    def pending_count(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled actions."""
        return sum(1 for _, _, h in self._queue if not h.cancelled and not h.fired)

    def next_due(self) -> Optional[SimTime]:
        """Due time of the earliest pending action."""
        for due_ns, _, handle in sorted(self._queue):
            if not handle.cancelled and not handle.fired:
                return SimTime(due_ns)
        return None

    # -- tick processing -----------------------------------------------------
    def advance_tick(self) -> None:
        """Advance operation time by one tick (called by the tick handler)."""
        self.tick_count += 1
        self.operation_time_ms += max(1, int(self.tick.to_ms()))

    def process_due(self, now: SimTime) -> int:
        """Run every action whose due time has been reached; returns the count."""
        fired = 0
        now_ns = now.nanoseconds
        while self._queue and self._queue[0][0] <= now_ns:
            _, _, handle = heapq.heappop(self._queue)
            if handle.cancelled or handle.fired:
                continue
            handle.fired = True
            fired += 1
            self.processed_count += 1
            handle.action()
        return fired

    def __repr__(self) -> str:
        return (
            f"TimeManager(tick={self.tick.format()}, "
            f"pending={self.pending_count()}, systime={self.get_system_time()} ms)"
        )
