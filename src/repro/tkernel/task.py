"""Task management: task control blocks and the tk_*_tsk service calls.

A task's behaviour is a *task function*: a callable ``task_fn(stacd, exinf)``
returning a generator.  The generator expresses execution time through
``yield from kernel.api.sim_wait(...)`` (or BFM accesses) and uses kernel
services through ``yield from kernel.tk_...(...)``.

Task states follow μ-ITRON: DORMANT until started, READY/RUNNING while
schedulable, WAITING while blocked in a service call, SUSPENDED when
suspended by another task, WAITING-SUSPENDED when both.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.core.events import ThreadKind
from repro.core.tthread import ThreadExit, ThreadTerminate, TThread
from repro.tkernel.errors import (
    E_CTX,
    E_ID,
    E_LIMIT,
    E_NOEXS,
    E_OBJ,
    E_OK,
    E_PAR,
    E_QOVR,
    E_RLWAI,
    E_TMOUT,
)
from repro.tkernel.objects import ObjectTable, WaitEntry
from repro.tkernel.types import (
    DEFAULT_WUPCNT_LIMIT,
    MAX_TASK_PRIORITY,
    MIN_TASK_PRIORITY,
    TMO_FEVR,
    TMO_POL,
    TSK_SELF,
    TTS_DMT,
    TTS_RDY,
    TTS_RUN,
    TTS_SUS,
    TTS_WAI,
    TTS_WAS,
    TTW_DLY,
    TTW_SLP,
    task_state_name,
    wait_factor_name,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS

#: Signature of a task function.
TaskFunction = Callable[[int, Any], Generator[object, object, None]]


class TaskControlBlock:
    """The kernel-side record of one task."""

    def __init__(
        self,
        tskid: int,
        name: str,
        task_fn: TaskFunction,
        itskpri: int,
        tskatr: int = 0,
        exinf: Any = None,
    ):
        self.tskid = tskid
        self.name = name
        self.task_fn = task_fn
        self.itskpri = itskpri
        self.base_priority = itskpri
        self.priority = itskpri
        self.tskatr = tskatr
        self.exinf = exinf
        self.stacd = 0
        self.thread: Optional[TThread] = None
        #: WAI / SUS / DMT bookkeeping bits (RUN/RDY are derived).
        self.state = TTS_DMT
        self.wupcnt = 0
        self.suscnt = 0
        self.wait_entry: Optional[WaitEntry] = None
        self.wait_factor = 0
        self.wait_object_id = 0
        #: Result payload of the most recent released wait (message, pattern,
        #: memory block, ...); set by the kernel's wait/release protocol.
        self.last_wait_result: Any = None
        #: Mutexes currently locked by this task (for inheritance & cleanup).
        self.locked_mutexes: List[Any] = []
        self.activation_requests = 0

    # -- state queries -------------------------------------------------------
    def is_dormant(self) -> bool:
        """Whether the task has not been started (or has exited)."""
        return bool(self.state & TTS_DMT)

    def is_waiting(self) -> bool:
        """Whether the task is blocked in a service call."""
        return bool(self.state & TTS_WAI)

    def is_suspended(self) -> bool:
        """Whether the task has been suspended with tk_sus_tsk."""
        return bool(self.state & TTS_SUS)

    def current_state(self, running_thread: Optional[TThread]) -> int:
        """The μ-ITRON task state, deriving RUN/RDY from the live thread."""
        if self.state & TTS_DMT:
            return TTS_DMT
        if self.state & TTS_WAI and self.state & TTS_SUS:
            return TTS_WAS
        if self.state & TTS_WAI:
            return TTS_WAI
        if self.state & TTS_SUS:
            return TTS_SUS
        if self.thread is not None and self.thread is running_thread:
            return TTS_RUN
        return TTS_RDY

    def state_name(self, running_thread: Optional[TThread]) -> str:
        """Readable name of :meth:`current_state`."""
        return task_state_name(self.current_state(running_thread))

    def __repr__(self) -> str:
        return (
            f"TaskControlBlock(id={self.tskid}, name={self.name!r}, "
            f"pri={self.priority}, state={task_state_name(self.state)})"
        )


class TaskManager:
    """Implements the task-management service calls."""

    def __init__(self, kernel: "TKernelOS", max_tasks: int = 256,
                 wupcnt_limit: int = DEFAULT_WUPCNT_LIMIT):
        self.kernel = kernel
        self.table: ObjectTable[TaskControlBlock] = ObjectTable(max_tasks)  # type: ignore[type-var]
        self._by_thread: Dict[int, TaskControlBlock] = {}
        self.wupcnt_limit = wupcnt_limit

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def get(self, tskid: int) -> Optional[TaskControlBlock]:
        """The TCB with *tskid*, or None."""
        return self.table.get(tskid)

    def all_tasks(self) -> List[TaskControlBlock]:
        """All TCBs ordered by identifier."""
        return self.table.all()

    def tcb_of_thread(self, thread: Optional[TThread]) -> Optional[TaskControlBlock]:
        """The TCB owning *thread*, if it is a task thread."""
        if thread is None:
            return None
        return self._by_thread.get(thread.tid)

    def current_tcb(self) -> Optional[TaskControlBlock]:
        """The TCB of the running task (None in task-independent context)."""
        return self.tcb_of_thread(self.kernel.api.running)

    def resolve(self, tskid: int) -> "TaskControlBlock | int":
        """Resolve *tskid* (handling TSK_SELF) to a TCB or an error code."""
        if tskid == TSK_SELF:
            current = self.current_tcb()
            if current is None:
                return E_ID
            return current
        if tskid < 0:
            return E_ID
        tcb = self.table.get(tskid)
        if tcb is None:
            return E_NOEXS
        return tcb

    # ------------------------------------------------------------------
    # Creation / deletion
    # ------------------------------------------------------------------
    def tk_cre_tsk(
        self,
        task_fn: TaskFunction,
        itskpri: int,
        name: str = "",
        tskatr: int = 0,
        exinf: Any = None,
        stksz: int = 1024,
    ):
        """Create a task (dormant).  Returns the new task id or an error code."""
        yield from self.kernel._svc_enter("tk_cre_tsk")
        try:
            if not MIN_TASK_PRIORITY <= itskpri <= MAX_TASK_PRIORITY:
                return E_PAR
            if stksz <= 0:
                return E_PAR
            result = self.table.add(
                lambda oid: TaskControlBlock(
                    oid, name or f"task{oid}", task_fn, itskpri, tskatr, exinf
                )
            )
            if isinstance(result, int):
                return result
            tcb = result
            tcb.thread = self.kernel.api.create_thread(
                tcb.name,
                self._body_factory(tcb),
                priority=itskpri,
                kind=ThreadKind.TASK,
            )
            self._by_thread[tcb.thread.tid] = tcb
            return tcb.tskid
        finally:
            self.kernel._svc_exit()

    def _body_factory(self, tcb: TaskControlBlock):
        kernel = self.kernel

        def factory():
            try:
                yield from tcb.task_fn(tcb.stacd, tcb.exinf)
            finally:
                kernel._on_task_body_finished(tcb)

        return factory

    def tk_del_tsk(self, tskid: int):
        """Delete a dormant task."""
        yield from self.kernel._svc_enter("tk_del_tsk")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            if not tcb.is_dormant():
                return E_OBJ
            assert tcb.thread is not None
            self._by_thread.pop(tcb.thread.tid, None)
            self.kernel.api.remove_thread(tcb.thread)
            self.table.delete(tcb.tskid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    # ------------------------------------------------------------------
    # Start / exit / terminate
    # ------------------------------------------------------------------
    def tk_sta_tsk(self, tskid: int, stacd: int = 0):
        """Start a dormant task."""
        yield from self.kernel._svc_enter("tk_sta_tsk")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            if not tcb.is_dormant():
                return E_OBJ
            self._start(tcb, stacd)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def _start(self, tcb: TaskControlBlock, stacd: int) -> None:
        tcb.stacd = stacd
        tcb.state = 0
        tcb.priority = tcb.itskpri
        tcb.wupcnt = 0
        tcb.suscnt = 0
        assert tcb.thread is not None
        tcb.thread.priority = tcb.itskpri
        self.kernel.api.start_thread(tcb.thread)

    def tk_ext_tsk(self):
        """Exit the invoking task (never returns to the task body)."""
        yield from self.kernel._svc_enter("tk_ext_tsk")
        self.kernel._svc_exit()
        raise ThreadExit()

    def tk_exd_tsk(self):
        """Exit and delete the invoking task."""
        yield from self.kernel._svc_enter("tk_exd_tsk")
        tcb = self.current_tcb()
        self.kernel._svc_exit()
        if tcb is not None:
            # Forget the task after the body unwinds; deletion is immediate
            # from the object-table point of view.
            assert tcb.thread is not None
            self._by_thread.pop(tcb.thread.tid, None)
            self.table.delete(tcb.tskid)
        raise ThreadExit()

    def tk_ter_tsk(self, tskid: int):
        """Forcibly terminate another task."""
        yield from self.kernel._svc_enter("tk_ter_tsk")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            current = self.current_tcb()
            if current is tcb:
                return E_OBJ  # a task cannot terminate itself with tk_ter_tsk
            if tcb.is_dormant():
                return E_OBJ
            self.kernel._force_terminate(tcb)
            return E_OK
        finally:
            self.kernel._svc_exit()

    # ------------------------------------------------------------------
    # Sleep / wakeup / delay
    # ------------------------------------------------------------------
    def tk_slp_tsk(self, tmout: int = TMO_FEVR):
        """Sleep until tk_wup_tsk (or timeout)."""
        yield from self.kernel._svc_enter("tk_slp_tsk")
        try:
            tcb = self.current_tcb()
            if tcb is None:
                return E_CTX
            if tcb.wupcnt > 0:
                tcb.wupcnt -= 1
                return E_OK
            if tmout == TMO_POL:
                return E_TMOUT
            ercd = yield from self.kernel._wait_here(
                tcb, factor=TTW_SLP, object_id=0, tmout=tmout
            )
            return ercd
        finally:
            self.kernel._svc_exit()

    def tk_wup_tsk(self, tskid: int):
        """Wake up a task sleeping in tk_slp_tsk (or queue the wakeup)."""
        yield from self.kernel._svc_enter("tk_wup_tsk")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            if tcb.is_dormant():
                return E_OBJ
            if tcb.is_waiting() and tcb.wait_factor == TTW_SLP:
                self.kernel._release_wait(tcb.wait_entry, E_OK)
                return E_OK
            if tcb.wupcnt >= self.wupcnt_limit:
                return E_QOVR
            tcb.wupcnt += 1
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_can_wup(self, tskid: int = TSK_SELF):
        """Return and clear the queued wakeup count."""
        yield from self.kernel._svc_enter("tk_can_wup")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            count = tcb.wupcnt
            tcb.wupcnt = 0
            return count
        finally:
            self.kernel._svc_exit()

    def tk_dly_tsk(self, dlytim: int):
        """Delay the invoking task for *dlytim* milliseconds."""
        yield from self.kernel._svc_enter("tk_dly_tsk")
        try:
            tcb = self.current_tcb()
            if tcb is None:
                return E_CTX
            if dlytim < 0:
                return E_PAR
            if dlytim == 0:
                return E_OK
            ercd = yield from self.kernel._wait_here(
                tcb,
                factor=TTW_DLY,
                object_id=0,
                tmout=dlytim,
                timeout_code=E_OK,
            )
            return ercd
        finally:
            self.kernel._svc_exit()

    def tk_rel_wai(self, tskid: int):
        """Forcibly release another task from its wait (it gets E_RLWAI)."""
        yield from self.kernel._svc_enter("tk_rel_wai")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            if not tcb.is_waiting() or tcb.wait_entry is None:
                return E_OBJ
            self.kernel._release_wait(tcb.wait_entry, E_RLWAI)
            return E_OK
        finally:
            self.kernel._svc_exit()

    # ------------------------------------------------------------------
    # Suspend / resume
    # ------------------------------------------------------------------
    def tk_sus_tsk(self, tskid: int):
        """Suspend a task (READY or WAITING; suspending the running task from
        another context is not supported by this model)."""
        yield from self.kernel._svc_enter("tk_sus_tsk")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            if tcb.is_dormant():
                return E_OBJ
            current = self.current_tcb()
            if tcb is current:
                return E_CTX
            if tcb.thread is self.kernel.api.running:
                return E_CTX
            tcb.suscnt += 1
            if not tcb.is_suspended():
                tcb.state |= TTS_SUS
                if not tcb.is_waiting():
                    # Remove from the ready pool until resumed.
                    self.kernel.api.make_unready(tcb.thread)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_rsm_tsk(self, tskid: int):
        """Resume a suspended task (one nesting level)."""
        return (yield from self._resume(tskid, force=False))

    def tk_frsm_tsk(self, tskid: int):
        """Forcibly resume a suspended task (clear all nesting levels)."""
        return (yield from self._resume(tskid, force=True))

    def _resume(self, tskid: int, force: bool):
        yield from self.kernel._svc_enter("tk_rsm_tsk")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            if not tcb.is_suspended():
                return E_OBJ
            tcb.suscnt = 0 if force else max(0, tcb.suscnt - 1)
            if tcb.suscnt == 0:
                tcb.state &= ~TTS_SUS
                if not tcb.is_waiting() and not tcb.is_dormant():
                    assert tcb.thread is not None
                    self.kernel.api.make_ready(tcb.thread)
                    self.kernel.api.request_dispatch()
            return E_OK
        finally:
            self.kernel._svc_exit()

    # ------------------------------------------------------------------
    # Priorities and references
    # ------------------------------------------------------------------
    def tk_chg_pri(self, tskid: int, tskpri: int):
        """Change a task's priority (0 restores the initial priority)."""
        yield from self.kernel._svc_enter("tk_chg_pri")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            if tskpri == 0:
                tskpri = tcb.itskpri
            if not MIN_TASK_PRIORITY <= tskpri <= MAX_TASK_PRIORITY:
                return E_PAR
            if tcb.is_dormant():
                return E_OBJ
            self.kernel._set_task_priority(tcb, tskpri)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_get_tid(self):
        """Identifier of the invoking task (0 in task-independent context)."""
        yield from self.kernel._svc_enter("tk_get_tid")
        try:
            tcb = self.current_tcb()
            return tcb.tskid if tcb is not None else 0
        finally:
            self.kernel._svc_exit()

    def tk_ref_tsk(self, tskid: int = TSK_SELF):
        """Reference a task's state (returns a dict, or an error code)."""
        yield from self.kernel._svc_enter("tk_ref_tsk")
        try:
            tcb = self.resolve(tskid)
            if isinstance(tcb, int):
                return tcb
            running = self.kernel.api.running
            return {
                "tskid": tcb.tskid,
                "name": tcb.name,
                "exinf": tcb.exinf,
                "tskpri": tcb.priority,
                "tskbpri": tcb.itskpri,
                "tskstat": tcb.current_state(running),
                "tskwait": tcb.wait_factor,
                "wid": tcb.wait_object_id,
                "wupcnt": tcb.wupcnt,
                "suscnt": tcb.suscnt,
                "state_name": tcb.state_name(running),
                "wait_name": wait_factor_name(tcb.wait_factor),
            }
        finally:
            self.kernel._svc_exit()
