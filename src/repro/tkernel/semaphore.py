"""Semaphores (tk_cre_sem, tk_sig_sem, tk_wai_sem, ...)."""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.tkernel.errors import E_CTX, E_OBJ, E_OK, E_PAR, E_QOVR, E_TMOUT
from repro.tkernel.objects import KernelObject, ObjectTable, WaitQueue
from repro.tkernel.types import TMO_FEVR, TMO_POL, TTW_SEM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS


class Semaphore(KernelObject):
    """A counting semaphore with a bounded resource count."""

    object_type = "semaphore"

    def __init__(self, object_id: int, name: str, attributes: int,
                 isemcnt: int, maxsem: int, exinf=None):
        super().__init__(object_id, name, attributes, exinf)
        self.count = isemcnt
        self.max_count = maxsem
        self.wait_queue = WaitQueue(attributes)

    def __repr__(self) -> str:
        return (
            f"Semaphore(id={self.object_id}, count={self.count}/{self.max_count}, "
            f"waiting={len(self.wait_queue)})"
        )


class SemaphoreManager:
    """Implements the semaphore service calls."""

    def __init__(self, kernel: "TKernelOS", max_semaphores: int = 256):
        self.kernel = kernel
        self.table: ObjectTable[Semaphore] = ObjectTable(max_semaphores)

    def all_semaphores(self) -> List[Semaphore]:
        """All live semaphores ordered by identifier."""
        return self.table.all()

    # ------------------------------------------------------------------
    # Service calls
    # ------------------------------------------------------------------
    def tk_cre_sem(self, isemcnt: int = 0, maxsem: int = 1, name: str = "",
                   sematr: int = 0, exinf=None):
        """Create a semaphore; returns its id or an error code."""
        yield from self.kernel._svc_enter("tk_cre_sem")
        try:
            if isemcnt < 0 or maxsem <= 0 or isemcnt > maxsem:
                return E_PAR
            result = self.table.add(
                lambda oid: Semaphore(oid, name or f"sem{oid}", sematr, isemcnt, maxsem, exinf)
            )
            if isinstance(result, int):
                return result
            return result.object_id
        finally:
            self.kernel._svc_exit()

    def tk_del_sem(self, semid: int):
        """Delete a semaphore; waiting tasks are released with E_DLT."""
        yield from self.kernel._svc_enter("tk_del_sem")
        try:
            sem = self.table.require(semid)
            if isinstance(sem, int):
                return sem
            self.kernel._release_all_waiters(sem.wait_queue)
            self.table.delete(semid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_sig_sem(self, semid: int, cnt: int = 1):
        """Return *cnt* resources to the semaphore, waking waiters in order."""
        yield from self.kernel._svc_enter("tk_sig_sem")
        try:
            sem = self.table.require(semid)
            if isinstance(sem, int):
                return sem
            if cnt <= 0:
                return E_PAR
            if sem.count + cnt > sem.max_count and not sem.wait_queue:
                return E_QOVR
            sem.count += cnt
            self._serve_waiters(sem)
            if sem.count > sem.max_count:
                sem.count = sem.max_count
                return E_QOVR
            return E_OK
        finally:
            self.kernel._svc_exit()

    def _serve_waiters(self, sem: Semaphore) -> None:
        """Release queued waiters while enough resources are available."""
        while sem.wait_queue:
            head = sem.wait_queue.peek()
            assert head is not None
            requested = head.data.get("count", 1)
            if requested > sem.count:
                break
            sem.count -= requested
            sem.wait_queue.pop()
            self.kernel._release_wait(head, E_OK)

    def tk_wai_sem(self, semid: int, cnt: int = 1, tmout: int = TMO_FEVR):
        """Acquire *cnt* resources, waiting up to *tmout* milliseconds."""
        yield from self.kernel._svc_enter("tk_wai_sem")
        try:
            sem = self.table.require(semid)
            if isinstance(sem, int):
                return sem
            if cnt <= 0 or cnt > sem.max_count:
                return E_PAR
            if sem.count >= cnt and not sem.wait_queue:
                sem.count -= cnt
                return E_OK
            if tmout == TMO_POL:
                return E_TMOUT
            tcb = self.kernel.tasks.current_tcb()
            if tcb is None:
                return E_CTX
            ercd = yield from self.kernel._wait_here(
                tcb,
                factor=TTW_SEM,
                object_id=semid,
                tmout=tmout,
                queue=sem.wait_queue,
                data={"count": cnt},
            )
            return ercd
        finally:
            self.kernel._svc_exit()

    def tk_ref_sem(self, semid: int):
        """Reference a semaphore's state."""
        yield from self.kernel._svc_enter("tk_ref_sem")
        try:
            sem = self.table.require(semid)
            if isinstance(sem, int):
                return sem
            return {
                "semid": sem.object_id,
                "name": sem.name,
                "exinf": sem.exinf,
                "semcnt": sem.count,
                "maxsem": sem.max_count,
                "wtsk": sem.wait_queue.waiting_task_ids(),
            }
        finally:
            self.kernel._svc_exit()
