"""T-Kernel constants: task states, object attributes, timeouts, wait factors.

The numeric values follow the μ-ITRON 4.0 / T-Kernel specification so that
reference output (Fig. 8 style listings) reads naturally to anyone familiar
with the standard.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Task states (T_RTSK.tskstat) — bit values so TTS_WAS = TTS_WAI | TTS_SUS.
# ---------------------------------------------------------------------------
TTS_RUN = 0x01   #: Running.
TTS_RDY = 0x02   #: Ready.
TTS_WAI = 0x04   #: Waiting.
TTS_SUS = 0x08   #: Suspended.
TTS_WAS = 0x0C   #: Waiting and suspended.
TTS_DMT = 0x10   #: Dormant.

TASK_STATE_NAMES = {
    TTS_RUN: "RUN",
    TTS_RDY: "RDY",
    TTS_WAI: "WAI",
    TTS_SUS: "SUS",
    TTS_WAS: "WAS",
    TTS_DMT: "DMT",
}

# ---------------------------------------------------------------------------
# Object attributes.
# ---------------------------------------------------------------------------
TA_TFIFO = 0x00000000   #: Wait queue ordered FIFO.
TA_TPRI = 0x00000001    #: Wait queue ordered by task priority.
TA_HLNG = 0x00000000    #: High-level-language start routine (always true here).
TA_RNG0 = 0x00000000    #: Protection ring 0 (informational only).
TA_USERBUF = 0x00000020  #: Caller supplies the buffer (memory pools / buffers).

TA_WSGL = 0x00000000    #: Event flag: only one task may wait.
TA_WMUL = 0x00000008    #: Event flag: multiple tasks may wait.
TA_CLR = 0x00000010     #: Event flag: clear on wait release.

TA_INHERIT = 0x00000002  #: Mutex: priority inheritance protocol.
TA_CEILING = 0x00000003  #: Mutex: priority ceiling protocol.

TA_STA = 0x00000002     #: Cyclic handler: start immediately on creation.
TA_PHS = 0x00000004     #: Cyclic handler: preserve the initial phase.

TA_MFIFO = 0x00000000   #: Mailbox/message buffer: messages ordered FIFO.
TA_MPRI = 0x00000002    #: Mailbox: messages ordered by message priority.

# ---------------------------------------------------------------------------
# Timeouts.
# ---------------------------------------------------------------------------
TMO_POL = 0      #: Polling (fail immediately if the wait condition is false).
TMO_FEVR = -1    #: Wait forever.

# ---------------------------------------------------------------------------
# Special task identifier.
# ---------------------------------------------------------------------------
TSK_SELF = 0     #: "the invoking task" in calls such as tk_chg_pri.

# ---------------------------------------------------------------------------
# Event flag wait modes.
# ---------------------------------------------------------------------------
TWF_ANDW = 0x00  #: Release when all bits of the pattern are set.
TWF_ORW = 0x01   #: Release when any bit of the pattern is set.
TWF_CLR = 0x10   #: Clear the whole flag on release.
TWF_BITCLR = 0x20  #: Clear only the released bits.

# ---------------------------------------------------------------------------
# Wait factors (T_RTSK.tskwait).
# ---------------------------------------------------------------------------
TTW_SLP = 0x00000001   #: Waiting in tk_slp_tsk.
TTW_DLY = 0x00000002   #: Waiting in tk_dly_tsk.
TTW_SEM = 0x00000004   #: Waiting for a semaphore.
TTW_FLG = 0x00000008   #: Waiting for an event flag.
TTW_MBX = 0x00000040   #: Waiting for a mailbox message.
TTW_MTX = 0x00000080   #: Waiting for a mutex.
TTW_SMBF = 0x00000100  #: Waiting to send to a message buffer.
TTW_RMBF = 0x00000200  #: Waiting to receive from a message buffer.
TTW_MPF = 0x00002000   #: Waiting for a fixed-size memory block.
TTW_MPL = 0x00004000   #: Waiting for a variable-size memory block.

WAIT_FACTOR_NAMES = {
    TTW_SLP: "SLP",
    TTW_DLY: "DLY",
    TTW_SEM: "SEM",
    TTW_FLG: "FLG",
    TTW_MBX: "MBX",
    TTW_MTX: "MTX",
    TTW_SMBF: "SMBF",
    TTW_RMBF: "RMBF",
    TTW_MPF: "MPF",
    TTW_MPL: "MPL",
}

# ---------------------------------------------------------------------------
# Priorities.
# ---------------------------------------------------------------------------
MIN_TASK_PRIORITY = 1     #: Highest urgency.
MAX_TASK_PRIORITY = 140   #: Lowest urgency supported by T-Kernel.
DEFAULT_WUPCNT_LIMIT = 7  #: Maximum queued wakeup requests before E_QOVR.


def task_state_name(state: int) -> str:
    """Readable name of a task state value."""
    return TASK_STATE_NAMES.get(state, f"0x{state:02X}")


def wait_factor_name(factor: int) -> str:
    """Readable name of a wait factor value."""
    return WAIT_FACTOR_NAMES.get(factor, f"0x{factor:X}") if factor else "-"
