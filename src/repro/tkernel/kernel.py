"""The RTK-Spec TRON central module: T-Kernel/OS on top of SIM_API.

Fig. 3 of the paper: *"the kernel simulation model consists of a central
module having three SC_THREADs: Thread Dispatch, Interrupt Dispatch and Boot
Modules sensitive to system tick, external interrupts, and reset signals
respectively."*  :class:`TKernelOS` is that central module.

* **Boot** waits for the hardware reset (or starts immediately when no reset
  signal is wired), consumes the annotated kernel start-up cost, initializes
  the kernel internal state and starts the *initial task*, which calls the
  user ``main`` entry to create and start the application tasks, handlers and
  resources.
* **Thread Dispatch** wakes on every system tick (the BFM's real-time clock,
  or an internal 1 ms timer when running stand-alone), runs the timer handler
  — advancing system time, expiring timeouts, activating cyclic and alarm
  handlers — and then applies any pending dispatch decision.
* **Interrupt Dispatch** wakes on the interrupt controller's request line,
  identifies the pending interrupt number and notifies the dedicated ISR
  T-THREAD through the SIM_API library.

Service calls are exposed both through the per-object managers
(``kernel.tasks``, ``kernel.semaphores``, ...) and as flat ``kernel.tk_*``
delegations matching the T-Kernel names.  All of them are generators: call
them with ``yield from`` inside a task or handler body.  Outside any T-THREAD
(tests, boot code) use :meth:`TKernelOS.call_immediate` for non-blocking
calls.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from repro.core.events import ExecutionContext, ThreadKind
from repro.core.scheduler import PriorityScheduler
from repro.core.simapi import SimApi
from repro.sysc.kernel import Simulator
from repro.sysc.module import SCModule
from repro.sysc.process import Wait, WaitEvent
from repro.sysc.signal import Signal
from repro.sysc.time import SimTime
from repro.tkernel.alarm import AlarmHandlerManager
from repro.tkernel.cyclic import CyclicHandlerManager
from repro.tkernel.errors import E_CTX, E_OK, E_RLWAI, E_TMOUT, KernelPanic
from repro.tkernel.eventflag import EventFlagManager
from repro.tkernel.interrupt import InterruptManager
from repro.tkernel.mailbox import MailboxManager
from repro.tkernel.mempool import MemoryPoolManager
from repro.tkernel.msgbuf import MessageBufferManager
from repro.tkernel.mutex import MutexManager
from repro.tkernel.objects import WaitEntry, WaitQueue
from repro.tkernel.semaphore import SemaphoreManager
from repro.tkernel.task import TaskControlBlock, TaskManager
from repro.tkernel.timemgmt import TimeManager
from repro.tkernel.types import TMO_FEVR, TTS_DMT, TTS_SUS, TTS_WAI

#: Signature of the user main entry run by the initial task.
UserMain = Callable[["TKernelOS"], Generator[object, object, None]]


class TKernelOS(SCModule):
    """The T-Kernel/OS simulation model (RTK-Spec TRON)."""

    #: Campaign spec kernel key (see :class:`repro.workload.KernelProfile`).
    model_key = "tkernel"

    def __init__(
        self,
        simulator: Simulator,
        user_main: Optional[UserMain] = None,
        api: Optional[SimApi] = None,
        system_tick: "SimTime | int" = SimTime.ms(1),
        tick_signal: Optional[Signal] = None,
        reset_signal: Optional[Signal] = None,
        name: str = "tkernel",
        charge_service_costs: bool = True,
        initial_task_priority: int = 1,
    ):
        super().__init__(name, simulator)
        self.system_tick = SimTime.coerce(system_tick)
        self.api = api if api is not None else SimApi(
            simulator, scheduler=PriorityScheduler(), system_tick=self.system_tick
        )
        self.time = TimeManager(self.system_tick)
        self.user_main = user_main
        self.charge_service_costs = charge_service_costs
        self.initial_task_priority = initial_task_priority

        # Object managers.
        self.tasks = TaskManager(self)
        self.semaphores = SemaphoreManager(self)
        self.eventflags = EventFlagManager(self)
        self.mutexes = MutexManager(self)
        self.mailboxes = MailboxManager(self)
        self.message_buffers = MessageBufferManager(self)
        self.memory_pools = MemoryPoolManager(self)
        self.cyclics = CyclicHandlerManager(self)
        self.alarms = AlarmHandlerManager(self)
        self.interrupts = InterruptManager(self)

        # External wiring.
        self.tick_signal = tick_signal
        self.reset_signal = reset_signal
        self._intc = None
        self._intc_attached_event = self.create_event("intc_attached")

        # Kernel state & statistics.
        self.booted = False
        self.boot_time: Optional[SimTime] = None
        self.initial_task_id: Optional[int] = None
        self.service_call_counts: Dict[str, int] = {}
        self.tick_handler_runs = 0

        # Service-call enter/exit flows over the observability bus; the
        # name stack pairs each `exit` with its `enter` across nesting.
        self._obs_svc = simulator.obs.topic("svc")
        self._svc_active: list = []

        # The three SC_THREADs of the central module (Fig. 3).
        self.sc_thread("boot", self._boot_process)
        self.sc_thread("thread_dispatch", self._thread_dispatch_process)
        self.sc_thread("interrupt_dispatch", self._interrupt_dispatch_process)

    # ------------------------------------------------------------------
    # External wiring
    # ------------------------------------------------------------------
    def attach_interrupt_controller(self, intc) -> None:
        """Attach an interrupt controller exposing ``irq_event``/``acknowledge()``."""
        self._intc = intc
        self._intc_attached_event.notify()

    def raise_interrupt(self, intno: int) -> bool:
        """Raise external interrupt *intno* directly (bypassing any INTC)."""
        return self.interrupts.dispatch(intno)

    # ------------------------------------------------------------------
    # The central-module processes
    # ------------------------------------------------------------------
    def _boot_process(self):
        """Kernel start-up sequence upon receiving the hardware reset."""
        if self.reset_signal is not None and not self.reset_signal.read():
            yield WaitEvent(self.reset_signal.posedge_event)
        boot_annotation = self.api.annotations.lookup("svc:boot")
        yield Wait(self.api.timing_model.time_of(boot_annotation.cycles))
        self._initialize_kernel()

    def _initialize_kernel(self) -> None:
        self.booted = True
        self.boot_time = self.simulator.now
        if self.user_main is None:
            return
        tskid = self.call_immediate(
            self.tasks.tk_cre_tsk(
                self._initial_task_body,
                itskpri=self.initial_task_priority,
                name="init_task",
            )
        )
        if tskid < 0:
            raise KernelPanic(f"failed to create the initial task: {tskid}")
        self.initial_task_id = tskid
        self.call_immediate(self.tasks.tk_sta_tsk(tskid))

    def _initial_task_body(self, stacd, exinf):
        """Body of the initial task: run the user main entry, then exit."""
        assert self.user_main is not None
        yield from self.user_main(self)

    def _thread_dispatch_process(self):
        """Tick handler: sensitive to the system tick (RTC or internal)."""
        if self.tick_signal is not None:
            tick_wait = WaitEvent(self.tick_signal.posedge_event)
        else:
            tick_wait = Wait(self.system_tick)
        while True:
            yield tick_wait  # reused every tick; the kernel never keeps it
            self._timer_handler()

    def _timer_handler(self) -> None:
        """The paper's timer handler: system clock, timer queue, dispatch."""
        if not self.booted:
            return
        self.tick_handler_runs += 1
        self.time.advance_tick()
        self.time.process_due(self.simulator.now)
        # "...then calls simulation library APIs to start running a
        # task/handler or preempt the running task if a task of higher
        # priority is ready to run."
        self.api.request_dispatch()

    def _interrupt_dispatch_process(self):
        """Identify and respond to external interrupts (Fig. 3)."""
        while True:
            if self._intc is None:
                yield WaitEvent(self._intc_attached_event)
                continue
            yield WaitEvent(self._intc.irq_event)
            while True:
                intno = self._intc.acknowledge()
                if intno is None:
                    break
                self.interrupts.dispatch(intno)

    # ------------------------------------------------------------------
    # Service-call plumbing shared by every manager
    # ------------------------------------------------------------------
    def _in_thread_context(self) -> bool:
        """Whether the invoking code runs inside the T-THREAD holding the CPU."""
        running = self.api.running
        process = self.simulator.running_process
        return (
            running is not None
            and process is not None
            and process.name == f"tthread.{running.name}"
        )

    def in_task_independent_context(self) -> bool:
        """Whether execution is currently in a handler / interrupt context."""
        if self.api.stack.in_interrupt():
            return True
        running = self.api.running
        return running is not None and running.is_handler

    def _svc_enter(self, name: str):
        """Enter a service call: atomicity plus the annotated call cost."""
        self.service_call_counts[name] = self.service_call_counts.get(name, 0) + 1
        # The name stack is maintained unconditionally so a sink attached or
        # detached mid-call cannot desynchronise later enter/exit pairings.
        self._svc_active.append(name)
        topic = self._obs_svc
        if topic.enabled:
            topic.emit(
                "enter", self.simulator._now_ns,
                name=name, depth=len(self._svc_active),
            )
        if self._in_thread_context():
            self.api.dispatch_disable()
            if self.charge_service_costs:
                yield from self.api.sim_wait_key(
                    f"svc:{name}", context=ExecutionContext.SERVICE_CALL
                )
        return None

    def _svc_exit(self) -> None:
        """Leave a service call: re-enable dispatching if we disabled it."""
        name = self._svc_active.pop() if self._svc_active else ""
        topic = self._obs_svc
        if topic.enabled:
            topic.emit("exit", self.simulator._now_ns, name=name)
        if self._in_thread_context() and not self.api.dispatch_enabled:
            self.api.dispatch_enable()

    def call_immediate(self, service_generator):
        """Run a non-blocking service call from outside any T-THREAD.

        Useful for boot code and tests.  Raises :class:`KernelPanic` if the
        call tries to consume simulated time or block.
        """
        try:
            next(service_generator)
        except StopIteration as stop:
            return stop.value
        raise KernelPanic(
            "call_immediate used with a service call that waits; "
            "call it from a task body with 'yield from' instead"
        )

    # ------------------------------------------------------------------
    # Generic wait / release protocol
    # ------------------------------------------------------------------
    def _wait_here(
        self,
        tcb: TaskControlBlock,
        factor: int,
        object_id: int,
        tmout: int = TMO_FEVR,
        queue: Optional[WaitQueue] = None,
        data: Optional[Dict[str, Any]] = None,
        timeout_code: int = E_TMOUT,
    ):
        """Block the invoking task until released, timed out or forcibly freed.

        Returns the release code (``E_OK``, ``E_TMOUT``, ``E_RLWAI``,
        ``E_DLT`` ...).  The release payload, if any, is left in
        ``tcb.last_wait_result``.
        """
        if self.in_task_independent_context():
            return E_CTX
        entry = WaitEntry(tcb, factor, object_id, data=dict(data or {}), queue=queue)
        tcb.wait_entry = entry
        tcb.wait_factor = factor
        tcb.wait_object_id = object_id
        tcb.last_wait_result = None
        tcb.state |= TTS_WAI
        if queue is not None:
            queue.enqueue(entry)
        if tmout is not None and tmout >= 0:
            entry.timeout_handle = self.time.after_ms(
                self.simulator.now,
                tmout,
                lambda: self._release_wait(entry, timeout_code),
                label=f"timeout:{tcb.name}",
            )
        yield from self.api.block_current()
        code = entry.release_code if entry.release_code is not None else E_OK
        tcb.last_wait_result = entry.result
        return code

    def _release_wait(self, entry: Optional[WaitEntry], code: int, result: Any = None) -> None:
        """Release a waiting task with *code* (idempotent)."""
        if entry is None or entry.release_code is not None:
            return
        entry.release_code = code
        entry.result = result
        if entry.queue is not None:
            entry.queue.remove(entry)
        self.time.cancel(entry.timeout_handle)
        tcb = entry.tcb
        tcb.wait_entry = None
        tcb.wait_factor = 0
        tcb.wait_object_id = 0
        tcb.last_wait_result = result
        tcb.state &= ~TTS_WAI
        if tcb.state & TTS_SUS or tcb.state & TTS_DMT:
            # Stays suspended (or was terminated while waiting): do not ready it.
            return
        assert tcb.thread is not None
        self.api.make_ready(tcb.thread)
        self.api.request_dispatch()

    def _release_all_waiters(self, queue: WaitQueue, code: int = None) -> None:
        """Release every waiter of *queue* (object deletion → E_DLT)."""
        from repro.tkernel.errors import E_DLT

        release_code = E_DLT if code is None else code
        for entry in queue.entries():
            self._release_wait(entry, release_code)

    # ------------------------------------------------------------------
    # Task lifecycle hooks used by the task manager
    # ------------------------------------------------------------------
    def _on_task_body_finished(self, tcb: TaskControlBlock) -> None:
        """Clean up after a task body returned, exited or was terminated."""
        self.mutexes.release_all_owned_by(tcb)
        if tcb.wait_entry is not None:
            entry = tcb.wait_entry
            entry.release_code = E_RLWAI
            if entry.queue is not None:
                entry.queue.remove(entry)
            self.time.cancel(entry.timeout_handle)
            tcb.wait_entry = None
        tcb.state = TTS_DMT
        tcb.wait_factor = 0
        tcb.wait_object_id = 0
        tcb.wupcnt = 0
        tcb.suscnt = 0
        tcb.priority = tcb.base_priority = tcb.itskpri
        if tcb.thread is not None:
            tcb.thread.priority = tcb.itskpri

    def _force_terminate(self, tcb: TaskControlBlock) -> None:
        """Forcibly terminate *tcb* (tk_ter_tsk)."""
        assert tcb.thread is not None
        self.api.make_unready(tcb.thread)
        tcb.thread.force_terminate()
        tcb.state = TTS_DMT

    def _set_task_priority(self, tcb: TaskControlBlock, priority: int,
                           base_change: bool = True) -> None:
        """Change a task's (current) priority and reorder queues accordingly."""
        assert tcb.thread is not None
        tcb.priority = priority
        if base_change:
            tcb.base_priority = priority
        scheduler = self.api.scheduler
        # Membership via the scheduler's O(1) __contains__ (the thread→level
        # map), not a ready_threads() materialisation + second removal scan.
        in_ready_pool = tcb.thread in scheduler
        if in_ready_pool:
            scheduler.remove(tcb.thread)
        tcb.thread.priority = priority
        if in_ready_pool:
            scheduler.add_ready(tcb.thread)
        if tcb.wait_entry is not None and tcb.wait_entry.queue is not None:
            tcb.wait_entry.queue.reorder_for_priority_change()
        self.api.request_dispatch()
        if self.api.running is tcb.thread:
            # The running task may have lowered itself below a ready task.
            candidate = scheduler.select_next()
            if candidate is not None and scheduler.should_preempt(tcb.thread, candidate):
                self.api.preempt_current()

    # ------------------------------------------------------------------
    # System time & system reference services
    # ------------------------------------------------------------------
    def tk_set_tim(self, time_ms: int):
        """Set the calendar system time."""
        yield from self._svc_enter("tk_set_tim")
        try:
            if time_ms < 0:
                from repro.tkernel.errors import E_PAR

                return E_PAR
            self.time.set_system_time(time_ms)
            return E_OK
        finally:
            self._svc_exit()

    def tk_get_tim(self):
        """Get the calendar system time in milliseconds."""
        yield from self._svc_enter("tk_get_tim")
        try:
            return self.time.get_system_time()
        finally:
            self._svc_exit()

    def tk_get_otm(self):
        """Get the operation time (milliseconds since boot)."""
        yield from self._svc_enter("tk_get_otm")
        try:
            return self.time.get_operation_time()
        finally:
            self._svc_exit()

    def tk_ref_sys(self):
        """Reference overall system state."""
        yield from self._svc_enter("tk_ref_sys")
        try:
            running_tcb = self.tasks.current_tcb()
            return {
                "sysstat": "in_interrupt" if self.in_task_independent_context() else "task",
                "runtskid": running_tcb.tskid if running_tcb else 0,
                "schedtskid": running_tcb.tskid if running_tcb else 0,
                "booted": self.booted,
                "tick_ms": self.system_tick.to_ms(),
                "task_count": len(self.tasks.all_tasks()),
                "semaphore_count": len(self.semaphores.all_semaphores()),
                "flag_count": len(self.eventflags.all_flags()),
                "mailbox_count": len(self.mailboxes.all_mailboxes()),
                "systime_ms": self.time.get_system_time(),
            }
        finally:
            self._svc_exit()

    # ------------------------------------------------------------------
    # Campaign adapter
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, object]:
        """Kernel-level run statistics for the campaign runner.

        Unlike :meth:`tk_ref_sys` this is a plain method (no service-call
        context or cost) so the runner can call it after the simulation ends.
        """
        return {
            "booted": self.booted,
            "boot_time_ms": self.boot_time.to_ms() if self.boot_time else None,
            "tick_handler_runs": self.tick_handler_runs,
            "service_calls": dict(sorted(self.service_call_counts.items())),
            "service_call_total": sum(self.service_call_counts.values()),
            "task_count": len(self.tasks.all_tasks()),
        }

    # ------------------------------------------------------------------
    # Flat tk_* delegations (the T-Kernel API surface, Table 1 style)
    # ------------------------------------------------------------------
    # Task management.
    def tk_cre_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_cre_tsk`."""
        return self.tasks.tk_cre_tsk(*args, **kwargs)

    def tk_del_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_del_tsk`."""
        return self.tasks.tk_del_tsk(*args, **kwargs)

    def tk_sta_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_sta_tsk`."""
        return self.tasks.tk_sta_tsk(*args, **kwargs)

    def tk_ext_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_ext_tsk`."""
        return self.tasks.tk_ext_tsk(*args, **kwargs)

    def tk_exd_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_exd_tsk`."""
        return self.tasks.tk_exd_tsk(*args, **kwargs)

    def tk_ter_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_ter_tsk`."""
        return self.tasks.tk_ter_tsk(*args, **kwargs)

    def tk_slp_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_slp_tsk`."""
        return self.tasks.tk_slp_tsk(*args, **kwargs)

    def tk_wup_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_wup_tsk`."""
        return self.tasks.tk_wup_tsk(*args, **kwargs)

    def tk_can_wup(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_can_wup`."""
        return self.tasks.tk_can_wup(*args, **kwargs)

    def tk_dly_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_dly_tsk`."""
        return self.tasks.tk_dly_tsk(*args, **kwargs)

    def tk_rel_wai(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_rel_wai`."""
        return self.tasks.tk_rel_wai(*args, **kwargs)

    def tk_sus_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_sus_tsk`."""
        return self.tasks.tk_sus_tsk(*args, **kwargs)

    def tk_rsm_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_rsm_tsk`."""
        return self.tasks.tk_rsm_tsk(*args, **kwargs)

    def tk_frsm_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_frsm_tsk`."""
        return self.tasks.tk_frsm_tsk(*args, **kwargs)

    def tk_chg_pri(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_chg_pri`."""
        return self.tasks.tk_chg_pri(*args, **kwargs)

    def tk_get_tid(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_get_tid`."""
        return self.tasks.tk_get_tid(*args, **kwargs)

    def tk_ref_tsk(self, *args, **kwargs):
        """See :meth:`repro.tkernel.task.TaskManager.tk_ref_tsk`."""
        return self.tasks.tk_ref_tsk(*args, **kwargs)

    # Semaphores.
    def tk_cre_sem(self, *args, **kwargs):
        """See :meth:`repro.tkernel.semaphore.SemaphoreManager.tk_cre_sem`."""
        return self.semaphores.tk_cre_sem(*args, **kwargs)

    def tk_del_sem(self, *args, **kwargs):
        """See :meth:`repro.tkernel.semaphore.SemaphoreManager.tk_del_sem`."""
        return self.semaphores.tk_del_sem(*args, **kwargs)

    def tk_sig_sem(self, *args, **kwargs):
        """See :meth:`repro.tkernel.semaphore.SemaphoreManager.tk_sig_sem`."""
        return self.semaphores.tk_sig_sem(*args, **kwargs)

    def tk_wai_sem(self, *args, **kwargs):
        """See :meth:`repro.tkernel.semaphore.SemaphoreManager.tk_wai_sem`."""
        return self.semaphores.tk_wai_sem(*args, **kwargs)

    def tk_ref_sem(self, *args, **kwargs):
        """See :meth:`repro.tkernel.semaphore.SemaphoreManager.tk_ref_sem`."""
        return self.semaphores.tk_ref_sem(*args, **kwargs)

    # Event flags.
    def tk_cre_flg(self, *args, **kwargs):
        """See :meth:`repro.tkernel.eventflag.EventFlagManager.tk_cre_flg`."""
        return self.eventflags.tk_cre_flg(*args, **kwargs)

    def tk_del_flg(self, *args, **kwargs):
        """See :meth:`repro.tkernel.eventflag.EventFlagManager.tk_del_flg`."""
        return self.eventflags.tk_del_flg(*args, **kwargs)

    def tk_set_flg(self, *args, **kwargs):
        """See :meth:`repro.tkernel.eventflag.EventFlagManager.tk_set_flg`."""
        return self.eventflags.tk_set_flg(*args, **kwargs)

    def tk_clr_flg(self, *args, **kwargs):
        """See :meth:`repro.tkernel.eventflag.EventFlagManager.tk_clr_flg`."""
        return self.eventflags.tk_clr_flg(*args, **kwargs)

    def tk_wai_flg(self, *args, **kwargs):
        """See :meth:`repro.tkernel.eventflag.EventFlagManager.tk_wai_flg`."""
        return self.eventflags.tk_wai_flg(*args, **kwargs)

    def tk_ref_flg(self, *args, **kwargs):
        """See :meth:`repro.tkernel.eventflag.EventFlagManager.tk_ref_flg`."""
        return self.eventflags.tk_ref_flg(*args, **kwargs)

    # Mutexes.
    def tk_cre_mtx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mutex.MutexManager.tk_cre_mtx`."""
        return self.mutexes.tk_cre_mtx(*args, **kwargs)

    def tk_del_mtx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mutex.MutexManager.tk_del_mtx`."""
        return self.mutexes.tk_del_mtx(*args, **kwargs)

    def tk_loc_mtx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mutex.MutexManager.tk_loc_mtx`."""
        return self.mutexes.tk_loc_mtx(*args, **kwargs)

    def tk_unl_mtx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mutex.MutexManager.tk_unl_mtx`."""
        return self.mutexes.tk_unl_mtx(*args, **kwargs)

    def tk_ref_mtx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mutex.MutexManager.tk_ref_mtx`."""
        return self.mutexes.tk_ref_mtx(*args, **kwargs)

    # Mailboxes.
    def tk_cre_mbx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mailbox.MailboxManager.tk_cre_mbx`."""
        return self.mailboxes.tk_cre_mbx(*args, **kwargs)

    def tk_del_mbx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mailbox.MailboxManager.tk_del_mbx`."""
        return self.mailboxes.tk_del_mbx(*args, **kwargs)

    def tk_snd_mbx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mailbox.MailboxManager.tk_snd_mbx`."""
        return self.mailboxes.tk_snd_mbx(*args, **kwargs)

    def tk_rcv_mbx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mailbox.MailboxManager.tk_rcv_mbx`."""
        return self.mailboxes.tk_rcv_mbx(*args, **kwargs)

    def tk_ref_mbx(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mailbox.MailboxManager.tk_ref_mbx`."""
        return self.mailboxes.tk_ref_mbx(*args, **kwargs)

    # Message buffers.
    def tk_cre_mbf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.msgbuf.MessageBufferManager.tk_cre_mbf`."""
        return self.message_buffers.tk_cre_mbf(*args, **kwargs)

    def tk_del_mbf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.msgbuf.MessageBufferManager.tk_del_mbf`."""
        return self.message_buffers.tk_del_mbf(*args, **kwargs)

    def tk_snd_mbf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.msgbuf.MessageBufferManager.tk_snd_mbf`."""
        return self.message_buffers.tk_snd_mbf(*args, **kwargs)

    def tk_rcv_mbf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.msgbuf.MessageBufferManager.tk_rcv_mbf`."""
        return self.message_buffers.tk_rcv_mbf(*args, **kwargs)

    def tk_ref_mbf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.msgbuf.MessageBufferManager.tk_ref_mbf`."""
        return self.message_buffers.tk_ref_mbf(*args, **kwargs)

    # Memory pools.
    def tk_cre_mpf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_cre_mpf`."""
        return self.memory_pools.tk_cre_mpf(*args, **kwargs)

    def tk_del_mpf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_del_mpf`."""
        return self.memory_pools.tk_del_mpf(*args, **kwargs)

    def tk_get_mpf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_get_mpf`."""
        return self.memory_pools.tk_get_mpf(*args, **kwargs)

    def tk_rel_mpf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_rel_mpf`."""
        return self.memory_pools.tk_rel_mpf(*args, **kwargs)

    def tk_ref_mpf(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_ref_mpf`."""
        return self.memory_pools.tk_ref_mpf(*args, **kwargs)

    def tk_cre_mpl(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_cre_mpl`."""
        return self.memory_pools.tk_cre_mpl(*args, **kwargs)

    def tk_del_mpl(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_del_mpl`."""
        return self.memory_pools.tk_del_mpl(*args, **kwargs)

    def tk_get_mpl(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_get_mpl`."""
        return self.memory_pools.tk_get_mpl(*args, **kwargs)

    def tk_rel_mpl(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_rel_mpl`."""
        return self.memory_pools.tk_rel_mpl(*args, **kwargs)

    def tk_ref_mpl(self, *args, **kwargs):
        """See :meth:`repro.tkernel.mempool.MemoryPoolManager.tk_ref_mpl`."""
        return self.memory_pools.tk_ref_mpl(*args, **kwargs)

    # Time-event handlers.
    def tk_cre_cyc(self, *args, **kwargs):
        """See :meth:`repro.tkernel.cyclic.CyclicHandlerManager.tk_cre_cyc`."""
        return self.cyclics.tk_cre_cyc(*args, **kwargs)

    def tk_del_cyc(self, *args, **kwargs):
        """See :meth:`repro.tkernel.cyclic.CyclicHandlerManager.tk_del_cyc`."""
        return self.cyclics.tk_del_cyc(*args, **kwargs)

    def tk_sta_cyc(self, *args, **kwargs):
        """See :meth:`repro.tkernel.cyclic.CyclicHandlerManager.tk_sta_cyc`."""
        return self.cyclics.tk_sta_cyc(*args, **kwargs)

    def tk_stp_cyc(self, *args, **kwargs):
        """See :meth:`repro.tkernel.cyclic.CyclicHandlerManager.tk_stp_cyc`."""
        return self.cyclics.tk_stp_cyc(*args, **kwargs)

    def tk_ref_cyc(self, *args, **kwargs):
        """See :meth:`repro.tkernel.cyclic.CyclicHandlerManager.tk_ref_cyc`."""
        return self.cyclics.tk_ref_cyc(*args, **kwargs)

    def tk_cre_alm(self, *args, **kwargs):
        """See :meth:`repro.tkernel.alarm.AlarmHandlerManager.tk_cre_alm`."""
        return self.alarms.tk_cre_alm(*args, **kwargs)

    def tk_del_alm(self, *args, **kwargs):
        """See :meth:`repro.tkernel.alarm.AlarmHandlerManager.tk_del_alm`."""
        return self.alarms.tk_del_alm(*args, **kwargs)

    def tk_sta_alm(self, *args, **kwargs):
        """See :meth:`repro.tkernel.alarm.AlarmHandlerManager.tk_sta_alm`."""
        return self.alarms.tk_sta_alm(*args, **kwargs)

    def tk_stp_alm(self, *args, **kwargs):
        """See :meth:`repro.tkernel.alarm.AlarmHandlerManager.tk_stp_alm`."""
        return self.alarms.tk_stp_alm(*args, **kwargs)

    def tk_ref_alm(self, *args, **kwargs):
        """See :meth:`repro.tkernel.alarm.AlarmHandlerManager.tk_ref_alm`."""
        return self.alarms.tk_ref_alm(*args, **kwargs)

    # Interrupt management.
    def tk_def_int(self, *args, **kwargs):
        """See :meth:`repro.tkernel.interrupt.InterruptManager.tk_def_int`."""
        return self.interrupts.tk_def_int(*args, **kwargs)

    def tk_ena_int(self, *args, **kwargs):
        """See :meth:`repro.tkernel.interrupt.InterruptManager.tk_ena_int`."""
        return self.interrupts.tk_ena_int(*args, **kwargs)

    def tk_dis_int(self, *args, **kwargs):
        """See :meth:`repro.tkernel.interrupt.InterruptManager.tk_dis_int`."""
        return self.interrupts.tk_dis_int(*args, **kwargs)

    def __repr__(self) -> str:
        return (
            f"TKernelOS(name={self.name!r}, booted={self.booted}, "
            f"tasks={len(self.tasks.all_tasks())}, tick={self.system_tick.format()})"
        )
