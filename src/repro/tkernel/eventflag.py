"""Event flags (tk_cre_flg, tk_set_flg, tk_clr_flg, tk_wai_flg, ...)."""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.tkernel.errors import E_CTX, E_ILUSE, E_OBJ, E_OK, E_PAR, E_TMOUT
from repro.tkernel.objects import KernelObject, ObjectTable, WaitQueue
from repro.tkernel.types import (
    TA_CLR,
    TA_WMUL,
    TMO_FEVR,
    TMO_POL,
    TTW_FLG,
    TWF_ANDW,
    TWF_BITCLR,
    TWF_CLR,
    TWF_ORW,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS


def pattern_matches(flag_pattern: int, wait_pattern: int, mode: int) -> bool:
    """Whether *flag_pattern* satisfies a wait for *wait_pattern* under *mode*."""
    if mode & TWF_ORW:
        return bool(flag_pattern & wait_pattern)
    return (flag_pattern & wait_pattern) == wait_pattern


class EventFlag(KernelObject):
    """A bit-pattern event flag."""

    object_type = "flag"

    def __init__(self, object_id: int, name: str, attributes: int,
                 iflgptn: int = 0, exinf=None):
        super().__init__(object_id, name, attributes, exinf)
        self.pattern = iflgptn
        self.wait_queue = WaitQueue(attributes)

    @property
    def allows_multiple_waiters(self) -> bool:
        """Whether the TA_WMUL attribute is set."""
        return bool(self.attributes & TA_WMUL)

    def __repr__(self) -> str:
        return (
            f"EventFlag(id={self.object_id}, pattern=0x{self.pattern:X}, "
            f"waiting={len(self.wait_queue)})"
        )


class EventFlagManager:
    """Implements the event-flag service calls."""

    def __init__(self, kernel: "TKernelOS", max_flags: int = 256):
        self.kernel = kernel
        self.table: ObjectTable[EventFlag] = ObjectTable(max_flags)

    def all_flags(self) -> List[EventFlag]:
        """All live event flags ordered by identifier."""
        return self.table.all()

    # ------------------------------------------------------------------
    # Service calls
    # ------------------------------------------------------------------
    def tk_cre_flg(self, iflgptn: int = 0, name: str = "", flgatr: int = 0, exinf=None):
        """Create an event flag; returns its id or an error code."""
        yield from self.kernel._svc_enter("tk_cre_flg")
        try:
            if iflgptn < 0:
                return E_PAR
            result = self.table.add(
                lambda oid: EventFlag(oid, name or f"flg{oid}", flgatr, iflgptn, exinf)
            )
            if isinstance(result, int):
                return result
            return result.object_id
        finally:
            self.kernel._svc_exit()

    def tk_del_flg(self, flgid: int):
        """Delete an event flag; waiting tasks are released with E_DLT."""
        yield from self.kernel._svc_enter("tk_del_flg")
        try:
            flag = self.table.require(flgid)
            if isinstance(flag, int):
                return flag
            self.kernel._release_all_waiters(flag.wait_queue)
            self.table.delete(flgid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_set_flg(self, flgid: int, setptn: int):
        """OR *setptn* into the flag and release every satisfied waiter."""
        yield from self.kernel._svc_enter("tk_set_flg")
        try:
            flag = self.table.require(flgid)
            if isinstance(flag, int):
                return flag
            if setptn < 0:
                return E_PAR
            flag.pattern |= setptn
            self._serve_waiters(flag)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def _serve_waiters(self, flag: EventFlag) -> None:
        for entry in flag.wait_queue.entries():
            waiptn = entry.data["waiptn"]
            wfmode = entry.data["wfmode"]
            if not pattern_matches(flag.pattern, waiptn, wfmode):
                continue
            released_pattern = flag.pattern
            flag.wait_queue.remove(entry)
            self.kernel._release_wait(entry, E_OK, result=released_pattern)
            if wfmode & TWF_CLR:
                flag.pattern = 0
            elif wfmode & TWF_BITCLR:
                flag.pattern &= ~waiptn
            if wfmode & (TWF_CLR | TWF_BITCLR):
                # Clearing may invalidate later waiters' conditions; re-check
                # from the (already captured) list on the next iterations.
                continue

    def tk_clr_flg(self, flgid: int, clrptn: int):
        """AND the flag pattern with *clrptn* (clears the bits not in clrptn)."""
        yield from self.kernel._svc_enter("tk_clr_flg")
        try:
            flag = self.table.require(flgid)
            if isinstance(flag, int):
                return flag
            flag.pattern &= clrptn
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_wai_flg(self, flgid: int, waiptn: int, wfmode: int = TWF_ORW,
                   tmout: int = TMO_FEVR):
        """Wait until the flag pattern satisfies *waiptn* under *wfmode*.

        Returns the flag pattern at release time (non-negative) or an error.
        """
        yield from self.kernel._svc_enter("tk_wai_flg")
        try:
            flag = self.table.require(flgid)
            if isinstance(flag, int):
                return flag
            if waiptn <= 0:
                return E_PAR
            if flag.wait_queue and not flag.allows_multiple_waiters:
                return E_OBJ
            if pattern_matches(flag.pattern, waiptn, wfmode):
                released_pattern = flag.pattern
                if wfmode & TWF_CLR:
                    flag.pattern = 0
                elif wfmode & TWF_BITCLR:
                    flag.pattern &= ~waiptn
                return released_pattern
            if tmout == TMO_POL:
                return E_TMOUT
            tcb = self.kernel.tasks.current_tcb()
            if tcb is None:
                return E_CTX
            ercd = yield from self.kernel._wait_here(
                tcb,
                factor=TTW_FLG,
                object_id=flgid,
                tmout=tmout,
                queue=flag.wait_queue,
                data={"waiptn": waiptn, "wfmode": wfmode},
            )
            if ercd != E_OK:
                return ercd
            released_pattern = tcb.last_wait_result
            return released_pattern if released_pattern is not None else E_OK
        finally:
            self.kernel._svc_exit()

    def tk_ref_flg(self, flgid: int):
        """Reference an event flag's state."""
        yield from self.kernel._svc_enter("tk_ref_flg")
        try:
            flag = self.table.require(flgid)
            if isinstance(flag, int):
                return flag
            return {
                "flgid": flag.object_id,
                "name": flag.name,
                "exinf": flag.exinf,
                "flgptn": flag.pattern,
                "wtsk": flag.wait_queue.waiting_task_ids(),
            }
        finally:
            self.kernel._svc_exit()
