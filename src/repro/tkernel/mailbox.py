"""Mailboxes (tk_cre_mbx, tk_snd_mbx, tk_rcv_mbx, ...).

A mailbox passes *message objects* by reference.  Messages may carry a
priority; with the ``TA_MPRI`` attribute the message queue is ordered by that
priority (lower value first), otherwise FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, TYPE_CHECKING

from repro.tkernel.errors import E_CTX, E_OK, E_PAR, E_TMOUT
from repro.tkernel.objects import KernelObject, ObjectTable, WaitQueue
from repro.tkernel.types import TA_MPRI, TMO_FEVR, TMO_POL, TTW_MBX

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tkernel.kernel import TKernelOS


@dataclass
class Message:
    """One mailbox message (payload passed by reference, as in T-Kernel)."""

    payload: Any
    priority: int = 0


class Mailbox(KernelObject):
    """A mailbox holding an unbounded queue of messages."""

    object_type = "mailbox"

    def __init__(self, object_id: int, name: str, attributes: int, exinf=None):
        super().__init__(object_id, name, attributes, exinf)
        self.messages: List[Message] = []
        self.wait_queue = WaitQueue(attributes)
        self.sent_count = 0
        self.received_count = 0

    @property
    def priority_ordered(self) -> bool:
        """Whether messages are ordered by message priority (TA_MPRI)."""
        return bool(self.attributes & TA_MPRI)

    def push(self, message: Message) -> None:
        """Insert a message according to the ordering attribute."""
        if not self.priority_ordered:
            self.messages.append(message)
            return
        for index, existing in enumerate(self.messages):
            if existing.priority > message.priority:
                self.messages.insert(index, message)
                return
        self.messages.append(message)

    def __repr__(self) -> str:
        return (
            f"Mailbox(id={self.object_id}, messages={len(self.messages)}, "
            f"waiting={len(self.wait_queue)})"
        )


class MailboxManager:
    """Implements the mailbox service calls."""

    def __init__(self, kernel: "TKernelOS", max_mailboxes: int = 256):
        self.kernel = kernel
        self.table: ObjectTable[Mailbox] = ObjectTable(max_mailboxes)

    def all_mailboxes(self) -> List[Mailbox]:
        """All live mailboxes ordered by identifier."""
        return self.table.all()

    # ------------------------------------------------------------------
    # Service calls
    # ------------------------------------------------------------------
    def tk_cre_mbx(self, name: str = "", mbxatr: int = 0, exinf=None):
        """Create a mailbox; returns its id or an error code."""
        yield from self.kernel._svc_enter("tk_cre_mbx")
        try:
            result = self.table.add(
                lambda oid: Mailbox(oid, name or f"mbx{oid}", mbxatr, exinf)
            )
            if isinstance(result, int):
                return result
            return result.object_id
        finally:
            self.kernel._svc_exit()

    def tk_del_mbx(self, mbxid: int):
        """Delete a mailbox; waiting tasks are released with E_DLT."""
        yield from self.kernel._svc_enter("tk_del_mbx")
        try:
            mailbox = self.table.require(mbxid)
            if isinstance(mailbox, int):
                return mailbox
            self.kernel._release_all_waiters(mailbox.wait_queue)
            self.table.delete(mbxid)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_snd_mbx(self, mbxid: int, payload: Any, msgpri: int = 0):
        """Send a message (never blocks)."""
        yield from self.kernel._svc_enter("tk_snd_mbx")
        try:
            mailbox = self.table.require(mbxid)
            if isinstance(mailbox, int):
                return mailbox
            if msgpri < 0:
                return E_PAR
            message = Message(payload, msgpri)
            mailbox.sent_count += 1
            waiter = mailbox.wait_queue.pop()
            if waiter is not None:
                mailbox.received_count += 1
                self.kernel._release_wait(waiter, E_OK, result=message.payload)
                return E_OK
            mailbox.push(message)
            return E_OK
        finally:
            self.kernel._svc_exit()

    def tk_rcv_mbx(self, mbxid: int, tmout: int = TMO_FEVR):
        """Receive a message; returns ``(E_OK, payload)`` or ``(error, None)``."""
        yield from self.kernel._svc_enter("tk_rcv_mbx")
        try:
            mailbox = self.table.require(mbxid)
            if isinstance(mailbox, int):
                return mailbox, None
            if mailbox.messages:
                message = mailbox.messages.pop(0)
                mailbox.received_count += 1
                return E_OK, message.payload
            if tmout == TMO_POL:
                return E_TMOUT, None
            tcb = self.kernel.tasks.current_tcb()
            if tcb is None:
                return E_CTX, None
            ercd = yield from self.kernel._wait_here(
                tcb,
                factor=TTW_MBX,
                object_id=mbxid,
                tmout=tmout,
                queue=mailbox.wait_queue,
            )
            if ercd != E_OK:
                return ercd, None
            return E_OK, tcb.last_wait_result
        finally:
            self.kernel._svc_exit()

    def tk_ref_mbx(self, mbxid: int):
        """Reference a mailbox's state."""
        yield from self.kernel._svc_enter("tk_ref_mbx")
        try:
            mailbox = self.table.require(mbxid)
            if isinstance(mailbox, int):
                return mailbox
            return {
                "mbxid": mailbox.object_id,
                "name": mailbox.name,
                "exinf": mailbox.exinf,
                "msgcnt": len(mailbox.messages),
                "wtsk": mailbox.wait_queue.waiting_task_ids(),
                "sent": mailbox.sent_count,
                "received": mailbox.received_count,
            }
        finally:
            self.kernel._svc_exit()
