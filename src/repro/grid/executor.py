"""Execute one shard of a sweep and merge shard outputs back together.

The executor is the worker half of the grid: given a :class:`ShardPlan` it
runs each assigned spec, streaming the run's ``sched`` events through a
:class:`~repro.obs.sinks.JsonlStreamSink` straight into the per-run artifact
file (bounded memory — exactly the ROADMAP's sharding recipe: workers
stream JSONL per shard, the coordinator concatenates).  Artifact names
carry the *global* run index, so :func:`merge_shards` reassembles a sweep
by pure file collection.

Resumability comes from the result store: every run goes through
:func:`~repro.campaign.runner.run_spec` with the shard's store attached, so
a shard that was interrupted and restarted replays its completed runs from
cache and only simulates the remainder.  A second pass over an untouched
sweep therefore executes zero simulations.

Each shard directory holds a ``shard.json`` document (schema
:data:`SHARD_SCHEMA`): the shard geometry, per-run deterministic metrics
documents keyed by global index, timing, and cache accounting.  The merge
validates the geometry (same shard count and sweep size everywhere, every
global index present exactly once) and then writes the same artifacts a
single-host batch writes — ``metrics.json``, ``aggregate.json`` and the
per-run event streams — with ``aggregate.json`` byte-identical to the
batch's.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.campaign.batch import run_events_filename
from repro.campaign.metrics import aggregate_metrics
from repro.campaign.runner import run_spec
from repro.grid.shard import ShardPlan
from repro.grid.store import GridError, ResultStore
from repro.obs.bus import canonical_json

#: Schema identifier of the ``shard.json`` document.
SHARD_SCHEMA = "repro-grid-shard/1"

#: Name of the per-shard metrics document inside a shard output directory.
SHARD_DOCUMENT = "shard.json"


def run_shard(
    plan: ShardPlan,
    out_dir: str,
    store: Optional[ResultStore] = None,
    refresh: bool = False,
    progress: Optional[Any] = None,
    telemetry: Optional[Any] = None,
    fuse: bool = True,
    policy: Optional[Any] = None,
) -> Dict[str, Any]:
    """Execute *plan*, writing per-run event streams and ``shard.json``.

    Runs execute serially within the shard — sharding itself is the
    parallelism (one shard per host/process); within one shard, serial
    streaming keeps memory bounded and makes resume granularity one run.
    *progress*, if given, is called as ``progress(global_index, result)``
    after each run.  Returns the shard document.

    *telemetry* collects per-run phase spans tagged with the global run
    index; spans stay outside ``shard.json`` and every event stream (the
    caller writes them to a sidecar), so the shard artifacts remain
    byte-identical with or without instrumentation.

    *fuse* (default on) threads one
    :class:`~repro.campaign.fused.FusedRunContext` through the shard's
    runs, so repeated specs compose once per shard process instead of once
    per run; ``fuse=False`` restores the build-from-scratch path.  The
    written artifacts are byte-identical either way.

    *policy* (a :class:`~repro.resilience.envelope.ResiliencePolicy`)
    envelopes failures instead of raising them through: a failed run
    leaves no entry in ``shard.json`` (the merge's coverage reporting
    names the gap), its per-attempt records land in a
    ``failures.jsonl`` sidecar next to the shard document, and the
    document's ``failed`` count is non-zero.  Failure data never enters
    ``shard.json`` or any event stream.
    """
    fused_context = None
    gc_pause: Any = contextlib.nullcontext()
    if fuse:
        from repro.campaign.fused import FusedRunContext, paused_gc

        fused_context = FusedRunContext()
        gc_pause = paused_gc()
    budget = policy.budget() if policy is not None else None
    failure_records: List[Any] = []
    os.makedirs(out_dir, exist_ok=True)
    entries: List[Dict[str, Any]] = []
    executed = cached = failed = 0
    with gc_pause:
        for global_index, spec in plan.runs:
            events_name = run_events_filename(global_index, spec.name)
            events_path = os.path.join(out_dir, events_name)
            run_telemetry = None
            if telemetry is not None:
                from repro.analytics.telemetry import TelemetryRecorder

                run_telemetry = TelemetryRecorder()
            if policy is None:
                result = run_spec(
                    spec,
                    collect_events=False,
                    events_stream=events_path,
                    store=store,
                    refresh=refresh,
                    telemetry=run_telemetry,
                    fused=fused_context,
                )
            else:
                from repro.resilience.envelope import ResilienceAbort
                from repro.resilience.executor import execute_with_retries

                def run_once(_attempt: int, spec: Any = spec) -> Any:
                    # Each attempt reopens the stream path, so a retry
                    # overwrites the failed attempt's partial stream.
                    return run_spec(
                        spec, collect_events=False,
                        events_stream=events_path, store=store,
                        refresh=refresh, telemetry=run_telemetry,
                        fused=fused_context, budget=budget,
                    )

                result, _outcome, records = execute_with_retries(
                    run_once, spec, global_index, policy)
                failure_records.extend(records)
                if result is None:
                    failed += 1
                    # A failed run's partial stream must not look like an
                    # artifact to a later merge.
                    with contextlib.suppress(OSError):
                        os.remove(events_path)
                    if fused_context is not None:
                        fused_context.reap()
                    if not policy.keep_going:
                        raise ResilienceAbort(records[-1])
                    continue
            if fused_context is not None:
                fused_context.reap()
            if telemetry is not None:
                telemetry.adopt(run_telemetry.spans, run=global_index,
                                shard=plan.index)
            if result.cached:
                cached += 1
            else:
                executed += 1
            entries.append({
                "index": global_index,
                "scenario": spec.name,
                "events": events_name,
                "events_streamed": result.events_streamed,
                "cached": result.cached,
                "run": result.metrics_document(),
                "timing": result.timing,
            })
            if progress is not None:
                progress(global_index, result)
    if failure_records:
        from repro.resilience.envelope import write_failures

        write_failures(os.path.join(out_dir, "failures.jsonl"),
                       failure_records)
    document = {
        "schema": SHARD_SCHEMA,
        "shards": plan.shards,
        "index": plan.index,
        "total": plan.total,
        "executed": executed,
        "cached": cached,
        "failed": failed,
        "runs": entries,
    }
    with open(os.path.join(out_dir, SHARD_DOCUMENT), "w", encoding="utf-8") as handle:
        handle.write(canonical_json(document))
        handle.write("\n")
    return document


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _load_shard_document(shard_dir: str) -> Dict[str, Any]:
    """Read and structurally validate one shard's ``shard.json``."""
    path = os.path.join(shard_dir, SHARD_DOCUMENT)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise GridError(f"cannot read shard metrics file {path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise GridError(f"corrupt shard metrics file {path!r}: {error}") from None
    if not isinstance(document, dict) or document.get("schema") != SHARD_SCHEMA:
        raise GridError(
            f"{path!r} is not a shard metrics document "
            f"(expected schema {SHARD_SCHEMA!r})"
        )
    for key in ("shards", "index", "total", "runs"):
        if key not in document:
            raise GridError(f"shard metrics file {path!r} is missing {key!r}")
    return document


#: Schema identifier of the ``coverage.json`` gap manifest.
COVERAGE_SCHEMA = "repro-coverage/1"


def merge_shards(
    shard_dirs: Sequence[str],
    out_dir: str,
    include_events: bool = True,
    telemetry: Optional[Any] = None,
    allow_partial: bool = False,
) -> Dict[str, Any]:
    """Reassemble shard outputs into the single-host batch artifact set.

    Validates that the shard documents describe one sweep (identical shard
    count and total), that every global run index of the sweep is present
    exactly once, and that every referenced event stream exists — any
    violation raises :class:`GridError` with a one-line message naming
    exactly which global run indices and which shard indices are absent.
    Writes ``metrics.json``, ``aggregate.json`` and the per-run event
    streams into *out_dir*; ``aggregate.json`` is byte-identical to the
    one a single-host ``repro batch`` over the same matrix writes.

    *allow_partial* degrades gracefully instead: whatever runs exist are
    merged (the aggregate covers exactly those), and a machine-readable
    ``coverage.json`` gap manifest (schema :data:`COVERAGE_SCHEMA`) records
    the missing run indices and absent shards.  A full sweep merged with
    ``allow_partial=True`` writes the identical ``aggregate.json`` plus a
    gap-free manifest.

    *telemetry* records the merge as one ``merge`` span; the written
    artifacts are identical with or without it.
    """
    merge_start = time.perf_counter()
    if not shard_dirs:
        raise GridError("no shard directories to merge")
    documents = []
    unreadable_dirs: List[str] = []
    unreadable_reasons: List[str] = []
    for shard_dir in shard_dirs:
        # A named dir whose shard.json is missing or corrupt is an absent
        # shard: fold it into the precise gap report below instead of
        # dying on the first bad directory.
        try:
            documents.append((shard_dir, _load_shard_document(shard_dir)))
        except GridError as error:
            unreadable_dirs.append(shard_dir)
            unreadable_reasons.append(str(error))
    if not documents:
        raise GridError(
            "none of the shard directories contain a readable shard "
            "document: " + "; ".join(unreadable_reasons)
        )

    shards = documents[0][1]["shards"]
    total = documents[0][1]["total"]
    for shard_dir, document in documents:
        if document["shards"] != shards or document["total"] != total:
            raise GridError(
                f"shard geometry mismatch: {shard_dir!r} describes "
                f"{document['shards']} shard(s) over {document['total']} runs, "
                f"expected {shards} over {total}"
            )

    by_index: Dict[int, Dict[str, Any]] = {}
    source_dirs: Dict[int, str] = {}
    for shard_dir, document in documents:
        for entry in document["runs"]:
            index = entry["index"]
            if index in by_index:
                raise GridError(
                    f"run index {index} appears in both "
                    f"{source_dirs[index]!r} and {shard_dir!r}"
                )
            by_index[index] = entry
            source_dirs[index] = shard_dir
    missing = [index for index in range(total) if index not in by_index]
    present_shards = sorted({document["index"] for _, document in documents})
    absent_shards = sorted(set(range(shards)) - set(present_shards))
    if missing and not allow_partial:
        absent = (f"; absent shard(s): {absent_shards}"
                  if absent_shards else "")
        bad_dirs = (f"; unreadable shard dir(s): {unreadable_dirs}"
                    if unreadable_dirs else "")
        raise GridError(
            f"sweep is incomplete: missing run indices {missing} "
            f"({len(by_index)} of {total} runs present{absent}{bad_dirs}) — "
            f"merge every shard or pass --allow-partial"
        )
    if unreadable_dirs and not allow_partial:
        raise GridError(
            f"unreadable shard dir(s): {unreadable_dirs} — every run is "
            "covered elsewhere, but a named shard directory holds no "
            "readable shard document"
        )

    os.makedirs(out_dir, exist_ok=True)
    ordered = [by_index[index] for index in sorted(by_index)]
    unreadable: List[int] = []
    event_paths: List[str] = []
    if include_events:
        kept: List[Dict[str, Any]] = []
        for entry in ordered:
            source = os.path.join(source_dirs[entry["index"]], entry["events"])
            if not os.path.isfile(source):
                if allow_partial:
                    # The run's metrics exist but its stream is gone —
                    # drop it entirely so the merged artifact set stays
                    # self-consistent, and report it as a gap.
                    unreadable.append(entry["index"])
                    continue
                raise GridError(f"missing event stream {source!r}")
            destination = os.path.join(out_dir, entry["events"])
            if os.path.abspath(source) != os.path.abspath(destination):
                shutil.copyfile(source, destination)
            event_paths.append(destination)
            kept.append(entry)
        if allow_partial:
            ordered = kept

    runs = [entry["run"] for entry in ordered]
    deterministic = {
        "campaign": {
            "runs": len(runs),
            "scenarios": [run["metrics"]["scenario"] for run in runs],
        },
        "runs": runs,
        "aggregate": aggregate_metrics(run["metrics"] for run in runs),
    }
    document = dict(deterministic)
    document["timing"] = {
        "shards": shards,
        "executed": sum(doc["executed"] for _, doc in documents),
        "cached": sum(doc["cached"] for _, doc in documents),
        "per_run": [entry["timing"] for entry in ordered],
    }

    metrics_path = os.path.join(out_dir, "metrics.json")
    with open(metrics_path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(document))
        handle.write("\n")
    aggregate_path = os.path.join(out_dir, "aggregate.json")
    with open(aggregate_path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(deterministic))
        handle.write("\n")

    all_missing = sorted(set(missing) | set(unreadable))
    coverage_path: Optional[str] = None
    if allow_partial:
        coverage = {
            "schema": COVERAGE_SCHEMA,
            "total": total,
            "shards": shards,
            "merged": len(runs),
            "merged_indices": [entry["index"] for entry in ordered],
            "missing_indices": all_missing,
            "present_shards": present_shards,
            "absent_shards": absent_shards,
        }
        coverage_path = os.path.join(out_dir, "coverage.json")
        with open(coverage_path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(coverage))
            handle.write("\n")

    if telemetry is not None:
        telemetry.record(
            "merge", time.perf_counter() - merge_start,
            shards=shards, runs=total,
        )
    return {
        "metrics": metrics_path,
        "aggregate": aggregate_path,
        "events": event_paths,
        "runs": total,
        "merged": len(runs),
        "missing": all_missing,
        "coverage": coverage_path,
        "shards": shards,
    }
