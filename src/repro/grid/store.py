"""The content-addressed result store: never simulate the same spec twice.

Every campaign run is a pure function of its :class:`ScenarioSpec` — metrics
and the JSONL event stream are deterministic by construction (the batch
engine's parallel == serial guarantee rests on exactly that).  The store
exploits it: results are cached on disk under the SHA-256 of the canonical
spec JSON (:func:`repro.campaign.spec.spec_hash`), so a sweep that was
interrupted, repeated, re-sharded or re-run on another host replays stored
artifacts byte-identically instead of re-simulating.

Layout (two-level fan-out keeps directories small at millions of entries)::

    <root>/
      .staging/                 in-flight artifacts (atomically renamed in)
      ab/ab12…ef/               one entry per spec hash
        manifest.json           schema, spec hash, code fingerprint, digests
        metrics.json            canonical deterministic metrics document
        events.jsonl            the run's sched-topic event stream

Integrity: an entry is served only when its manifest parses, carries the
current schema and *code fingerprint* (a digest of the ``repro`` package
sources — results produced by different code never leak across versions),
and the stored artifacts match their recorded SHA-256 digests.  Anything
less — a truncated write, a poisoned file, a stale version — is a cache
miss; the entry is recomputed and overwritten, and ``gc()`` sweeps it.

Entries are written to ``.staging`` first and atomically renamed into
place, so an interrupted sweep never leaves a half-entry that a resumed
sweep could mistake for a result.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Tuple, Union

from repro.campaign.metrics import RunResult
from repro.campaign.spec import ScenarioSpec, spec_hash_from_document
from repro.obs.bus import canonical_json
from repro.obs.sinks import _open_target

#: Schema identifier of store entries; bump on incompatible layout changes.
STORE_SCHEMA = "repro-grid-store/1"


class GridError(RuntimeError):
    """A grid-layer failure that deserves a one-line CLI error, not a traceback."""


class GridUsageError(GridError, ValueError):
    """A grid API called with unusable arguments.

    Both a :class:`GridError` (the CLI renders it as a one-line error with
    exit code 2) and a :class:`ValueError` (callers that guard argument
    mistakes the Python way keep working).
    """


# ----------------------------------------------------------------------
# Code fingerprint
# ----------------------------------------------------------------------
_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``repro`` source file — the producing-code identity.

    A cache entry records the fingerprint of the code that produced it;
    lookups only serve entries whose fingerprint matches the running code,
    so editing any simulator/campaign source invalidates stale results
    instead of replaying them.  Computed once per process (~1 ms).
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        hasher = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(package_root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(f for f in filenames if f.endswith(".py")):
                path = os.path.join(dirpath, name)
                relative = os.path.relpath(path, package_root)
                hasher.update(relative.encode("utf-8"))
                hasher.update(b"\0")
                with open(path, "rb") as handle:
                    hasher.update(handle.read())
                hasher.update(b"\0")
        _FINGERPRINT = hasher.hexdigest()
    return _FINGERPRINT


def _file_sha256(path: str) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            hasher.update(chunk)
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Stored results
# ----------------------------------------------------------------------
class StoredResult:
    """A verified cache entry, ready to replay its artifacts."""

    __slots__ = ("key", "entry_dir", "manifest")

    def __init__(self, key: str, entry_dir: str, manifest: Dict[str, Any]):
        self.key = key
        self.entry_dir = entry_dir
        self.manifest = manifest

    @property
    def metrics_path(self) -> str:
        return os.path.join(self.entry_dir, "metrics.json")

    @property
    def events_path(self) -> str:
        return os.path.join(self.entry_dir, "events.jsonl")

    def metrics_document(self) -> Dict[str, Any]:
        """The stored deterministic metrics document (``{"spec", "metrics"}``)."""
        with open(self.metrics_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def events(self) -> List[Dict[str, Any]]:
        """The stored event stream as JSON documents."""
        with open(self.events_path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def stream_events_to(self, target: "Union[str, IO[str]]") -> int:
        """Copy the stored JSONL stream to *target* byte for byte.

        *target* follows the sink convention: a path, ``"-"`` for stdout or
        an open text stream.  Returns the number of lines written.
        """
        stream, owns_stream = _open_target(target)
        lines = 0
        try:
            with open(self.events_path, "r", encoding="utf-8") as source:
                for line in source:
                    stream.write(line)
                    lines += 1
            stream.flush()
        finally:
            if owns_stream:
                stream.close()
        return lines

    def gantt(self, name: str = "gantt"):
        """Rebuild the run's Gantt chart from the stored stream (no re-sim)."""
        from repro.core.gantt import GanttChart
        from repro.obs.replay import read_events_jsonl

        return GanttChart.from_events(read_events_jsonl(self.events_path), name=name)

    def replay(
        self,
        collect_events: bool = True,
        events_stream: "Optional[Union[str, IO[str]]]" = None,
    ) -> RunResult:
        """Reconstruct the :class:`RunResult` this entry was produced from.

        Mirrors :func:`repro.campaign.runner.run_spec`'s output modes: with
        *events_stream* the stored JSONL is copied to the target (and
        ``events`` stays empty); otherwise *collect_events* loads the stream
        into memory.  The ``timing`` section carries ``cached: True`` plus
        the replay wall clock — speed measures (R, S/R) are host facts about
        a simulation that did not happen here, so they are ``None``.
        """
        start = time.perf_counter()
        document = self.metrics_document()
        events: List[Dict[str, Any]] = []
        events_streamed = 0
        if events_stream is not None:
            events_streamed = self.stream_events_to(events_stream)
        elif collect_events:
            events = self.events()
        timing = {
            "cached": True,
            "wall_clock_seconds": time.perf_counter() - start,
            "r_over_s": None,
            "s_over_r": None,
        }
        return RunResult(
            spec=document["spec"],
            metrics=document["metrics"],
            timing=timing,
            events=events,
            events_streamed=events_streamed,
            cached=True,
        )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ResultStore:
    """Content-addressed on-disk cache of campaign run results."""

    def __init__(self, root: str, fingerprint: Optional[str] = None):
        self.root = os.path.abspath(root)
        self.fingerprint = fingerprint or code_fingerprint()
        os.makedirs(self.root, exist_ok=True)

    # -- paths -------------------------------------------------------------
    def entry_dir(self, key: str) -> str:
        """Directory of the entry for cache key *key*."""
        return os.path.join(self.root, key[:2], key)

    def _staging_dir(self) -> str:
        staging = os.path.join(self.root, ".staging")
        os.makedirs(staging, exist_ok=True)
        return staging

    def staging_events_path(self, key: str) -> str:
        """A staging path for streaming events during a run.

        Unique per (key, process) so two processes simulating the same spec
        against one store can never interleave writes; whichever ``put``
        lands last wins the entry, atomically.
        """
        return os.path.join(
            self._staging_dir(), f"{key}.{os.getpid()}.events.jsonl"
        )

    # -- lookup ------------------------------------------------------------
    def lookup(self, spec: "Union[ScenarioSpec, Mapping[str, Any]]") -> Optional[StoredResult]:
        """The verified entry for *spec*, or ``None`` on any kind of miss.

        A miss is silent whether the entry is absent, stale (other code
        fingerprint or schema) or corrupt (unparseable manifest, artifact
        digest mismatch) — the caller's job is simply to recompute;
        ``stats()``/``gc()`` report and sweep the bad entries.
        """
        return self.lookup_key(self.key_of(spec))

    def lookup_key(self, key: str) -> Optional[StoredResult]:
        """Like :meth:`lookup` but addressed by the cache key directly."""
        entry_dir = self.entry_dir(key)
        manifest = self._verified_manifest(key, entry_dir)
        if manifest is None:
            return None
        return StoredResult(key, entry_dir, manifest)

    def key_of(self, spec: "Union[ScenarioSpec, Mapping[str, Any]]") -> str:
        """The cache key of a spec (object or ``to_dict`` document)."""
        document = spec.to_dict() if isinstance(spec, ScenarioSpec) else dict(spec)
        return spec_hash_from_document(document)

    def entry_problems(
        self, key: str, entry_dir: str
    ) -> Tuple[Optional[Dict[str, Any]], List[str]]:
        """Integrity report for one entry: ``(manifest, problems)``.

        An empty problem list means the entry is servable; otherwise each
        string names one verification failure (unreadable/corrupt manifest,
        schema or fingerprint mismatch, artifact digest mismatch).  The
        manifest is returned even for failing entries when it parses at
        all, so callers can still name the scenario they are discarding.
        """
        manifest_path = os.path.join(entry_dir, "manifest.json")
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as error:
            return None, [f"unreadable manifest: {error}"]
        except json.JSONDecodeError as error:
            return None, [f"corrupt manifest: {error}"]
        if not isinstance(manifest, dict):
            return None, ["manifest is not a JSON object"]
        problems: List[str] = []
        if manifest.get("schema") != STORE_SCHEMA:
            problems.append(
                f"schema {manifest.get('schema')!r} != {STORE_SCHEMA!r}"
            )
        if manifest.get("spec_hash") != key:
            problems.append("spec_hash does not match the entry key")
        if manifest.get("fingerprint") != self.fingerprint:
            problems.append("code fingerprint mismatch (stale entry)")
        for artifact, digest_key in (
            ("metrics.json", "metrics_sha256"),
            ("events.jsonl", "events_sha256"),
        ):
            path = os.path.join(entry_dir, artifact)
            try:
                if _file_sha256(path) != manifest.get(digest_key):
                    problems.append(f"{artifact} digest mismatch")
            except OSError:
                problems.append(f"{artifact} missing or unreadable")
        return manifest, problems

    def _verified_manifest(self, key: str, entry_dir: str) -> Optional[Dict[str, Any]]:
        manifest, problems = self.entry_problems(key, entry_dir)
        if problems:
            return None
        return manifest

    # -- writing -----------------------------------------------------------
    def put(
        self,
        spec_document: Mapping[str, Any],
        metrics: Mapping[str, Any],
        events: Optional[Iterable[Mapping[str, Any]]] = None,
        events_path: Optional[str] = None,
    ) -> StoredResult:
        """Store one run's deterministic artifacts; returns the new entry.

        The event stream comes either as in-memory documents (*events*) or
        as an already-written JSONL file (*events_path*, consumed — moved
        into the entry).  Both spellings produce identical bytes because the
        canonical encoder is shared with the live streaming sink.  An
        existing entry for the same key is atomically replaced.
        """
        if (events is None) == (events_path is None):
            raise GridUsageError(
                "put() needs exactly one of events / events_path"
            )
        key = spec_hash_from_document(spec_document)
        staging = os.path.join(self._staging_dir(), f"{key}.{os.getpid()}.entry")
        if os.path.isdir(staging):
            shutil.rmtree(staging)
        os.makedirs(staging)

        # Each artifact is rendered in memory and lands in ONE write, with
        # its digest computed from the very bytes written — no re-read pass.
        metrics_path = os.path.join(staging, "metrics.json")
        metrics_blob = (canonical_json(
            {"spec": dict(spec_document), "metrics": dict(metrics)}
        ) + "\n").encode("utf-8")
        with open(metrics_path, "wb") as handle:
            handle.write(metrics_blob)

        staged_events = os.path.join(staging, "events.jsonl")
        if events_path is not None:
            # shutil.move rather than os.replace: the caller's file may live
            # on another filesystem than the store.
            shutil.move(events_path, staged_events)
            event_lines = 0
            events_bytes = 0
            events_hasher = hashlib.sha256()
            tail = b"\n"
            with open(staged_events, "rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 20), b""):
                    events_hasher.update(chunk)
                    event_lines += chunk.count(b"\n")
                    events_bytes += len(chunk)
                    tail = chunk[-1:]
            if events_bytes and tail != b"\n":
                event_lines += 1  # an unterminated final line still counts
            events_sha256 = events_hasher.hexdigest()
        else:
            parts: List[str] = []
            for event in events:
                parts.append(canonical_json(event))
                parts.append("\n")
            events_blob = "".join(parts).encode("utf-8")
            event_lines = len(parts) // 2
            events_bytes = len(events_blob)
            events_sha256 = hashlib.sha256(events_blob).hexdigest()
            with open(staged_events, "wb") as handle:
                handle.write(events_blob)

        manifest = {
            "schema": STORE_SCHEMA,
            "spec_hash": key,
            "scenario": spec_document.get("name", ""),
            "fingerprint": self.fingerprint,
            "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "events_lines": event_lines,
            "events_bytes": events_bytes,
            "events_sha256": events_sha256,
            "metrics_bytes": len(metrics_blob),
            "metrics_sha256": hashlib.sha256(metrics_blob).hexdigest(),
        }
        with open(os.path.join(staging, "manifest.json"), "wb") as handle:
            handle.write((canonical_json(manifest) + "\n").encode("utf-8"))

        entry_dir = self.entry_dir(key)
        os.makedirs(os.path.dirname(entry_dir), exist_ok=True)
        try:
            # Atomic when no entry exists yet — the common case.
            os.replace(staging, entry_dir)
        except OSError:
            # Replacing an existing entry, or a concurrent writer landed
            # first.  Content addressing makes every winner equivalent, so
            # clear and retry once; if another writer beats us again, keep
            # theirs and drop our redundant staging copy.
            shutil.rmtree(entry_dir, ignore_errors=True)
            try:
                os.replace(staging, entry_dir)
            except OSError:
                shutil.rmtree(staging, ignore_errors=True)
        return StoredResult(key, entry_dir, manifest)

    def put_result(self, result: RunResult) -> StoredResult:
        """Store a finished :class:`RunResult` (must carry its events)."""
        return self.put(result.spec, result.metrics, events=result.events)

    # -- iteration ---------------------------------------------------------
    def iter_results(self) -> "Iterable[StoredResult]":
        """Every verified entry, in ascending cache-key order.

        Stale and corrupt entries are skipped silently (same policy as
        :meth:`lookup`); the analytics corpus index is built from exactly
        this view, so an index row always comes from a digest-verified
        entry produced by the running code version.
        """
        for key, entry_dir in self._entry_dirs():
            manifest = self._verified_manifest(key, entry_dir)
            if manifest is not None:
                yield StoredResult(key, entry_dir, manifest)

    # -- maintenance -------------------------------------------------------
    def _entry_dirs(self) -> List[Tuple[str, str]]:
        entries: List[Tuple[str, str]] = []
        for prefix in sorted(os.listdir(self.root)):
            if prefix.startswith(".") or not os.path.isdir(
                os.path.join(self.root, prefix)
            ):
                continue
            for key in sorted(os.listdir(os.path.join(self.root, prefix))):
                path = os.path.join(self.root, prefix, key)
                # Stray regular files (editor droppings, interrupted tools)
                # are not entries; ignoring them keeps stats/gc/clear able
                # to operate on — and repair — a damaged store.
                if os.path.isdir(path):
                    entries.append((key, path))
        return entries

    def stats(self) -> Dict[str, Any]:
        """Inventory of the store: entry health, sizes, per-scenario counts."""
        valid = stale = corrupt = 0
        total_bytes = 0
        events_lines = 0
        scenarios: Dict[str, int] = {}
        for key, entry_dir in self._entry_dirs():
            for name in os.listdir(entry_dir):
                try:
                    total_bytes += os.path.getsize(os.path.join(entry_dir, name))
                except OSError:
                    pass
            manifest = self._verified_manifest(key, entry_dir)
            if manifest is not None:
                valid += 1
                events_lines += manifest.get("events_lines", 0)
                scenario = manifest.get("scenario", "")
                scenarios[scenario] = scenarios.get(scenario, 0) + 1
                continue
            # Distinguish "other code version" from "damaged": a manifest
            # that parses and self-describes consistently but carries a
            # different fingerprint/schema is stale, everything else corrupt.
            try:
                with open(os.path.join(entry_dir, "manifest.json"),
                          "r", encoding="utf-8") as handle:
                    raw = json.load(handle)
                if isinstance(raw, dict) and raw.get("spec_hash") == key and (
                    raw.get("fingerprint") != self.fingerprint
                    or raw.get("schema") != STORE_SCHEMA
                ):
                    stale += 1
                else:
                    corrupt += 1
            except (OSError, json.JSONDecodeError):
                corrupt += 1
        return {
            "root": self.root,
            "entries": valid + stale + corrupt,
            "valid": valid,
            "stale": stale,
            "corrupt": corrupt,
            "bytes": total_bytes,
            "events_lines": events_lines,
            "scenarios": dict(sorted(scenarios.items())),
        }

    def quarantine_dir(self) -> str:
        """Where :meth:`verify` moves failing entries (never served)."""
        return os.path.join(self.root, ".quarantine")

    def verify(self, repair: bool = False) -> Dict[str, Any]:
        """Scan every entry and report the ones failing verification.

        Today a damaged entry is only ever discovered lazily, as a silent
        cache miss; ``verify`` surfaces them all at once.  Returns
        ``{"checked", "bad": [{key, scenario, problems}], "quarantined"}``.
        With *repair*, each failing entry is moved into the store's
        ``.quarantine/`` directory (a dot-directory, so it is invisible to
        lookups, stats and iteration) where it can be inspected or
        deleted; the store itself is clean afterwards.
        """
        bad: List[Dict[str, Any]] = []
        checked = 0
        for key, entry_dir in self._entry_dirs():
            checked += 1
            manifest, problems = self.entry_problems(key, entry_dir)
            if not problems:
                continue
            scenario = ""
            if isinstance(manifest, dict):
                scenario = manifest.get("scenario", "")
            bad.append({"key": key, "scenario": scenario,
                        "problems": problems})
        quarantined = 0
        if repair and bad:
            quarantine_root = self.quarantine_dir()
            os.makedirs(quarantine_root, exist_ok=True)
            for item in bad:
                entry_dir = self.entry_dir(item["key"])
                destination = os.path.join(quarantine_root, item["key"])
                shutil.rmtree(destination, ignore_errors=True)
                shutil.move(entry_dir, destination)
                quarantined += 1
            # Fan-out directories emptied by the moves.
            for prefix in os.listdir(self.root):
                path = os.path.join(self.root, prefix)
                if (not prefix.startswith(".") and os.path.isdir(path)
                        and not os.listdir(path)):
                    os.rmdir(path)
        return {"checked": checked, "bad": bad, "quarantined": quarantined}

    def gc(self) -> Dict[str, int]:
        """Drop unusable entries (stale or corrupt) and stray staging files."""
        removed = kept = 0
        for key, entry_dir in self._entry_dirs():
            if self._verified_manifest(key, entry_dir) is None:
                shutil.rmtree(entry_dir)
                removed += 1
            else:
                kept += 1
        staging = os.path.join(self.root, ".staging")
        staging_removed = 0
        if os.path.isdir(staging):
            for name in os.listdir(staging):
                path = os.path.join(staging, name)
                if os.path.isdir(path):
                    shutil.rmtree(path)
                else:
                    os.remove(path)
                staging_removed += 1
        # Empty fan-out directories left behind by removals.
        for prefix in os.listdir(self.root):
            path = os.path.join(self.root, prefix)
            if not prefix.startswith(".") and os.path.isdir(path) and not os.listdir(path):
                os.rmdir(path)
        return {"removed": removed, "kept": kept, "staging_removed": staging_removed}

    def clear(self) -> int:
        """Remove every entry (and staging residue); returns entries removed."""
        removed = 0
        for _, entry_dir in self._entry_dirs():
            shutil.rmtree(entry_dir)
            removed += 1
        shutil.rmtree(self.quarantine_dir(), ignore_errors=True)
        self.gc()
        return removed

    def __len__(self) -> int:
        return len(self._entry_dirs())

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r}, entries={len(self)})"
