"""Deterministic sharding of an expanded campaign matrix.

Scale-out across hosts needs no coordinator: every worker expands the same
scenario selection (same scenarios, same matrix, same overrides — therefore
the same global run order and the same derived per-run seeds) and takes the
slice :func:`plan_shard` deterministically assigns to its index.  Runs keep
their *global* index through execution and into artifact names, so a merge
is a pure reassembly and the aggregate is byte-identical to a single-host
batch over the full matrix.

Partitioning is round-robin (``global_index % shards == shard_index``):
every shard count yields a balanced split (sizes differ by at most one) and
adjacent matrix points — often the most expensive neighbours, e.g. a swept
``task_count`` axis — spread across shards instead of clumping on one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.campaign.spec import ScenarioSpec
from repro.grid.store import GridError


@dataclass(frozen=True)
class ShardPlan:
    """One shard's slice of a sweep: (global index, spec) pairs."""

    #: Total number of shards the sweep is split into.
    shards: int
    #: This shard's index, ``0 <= index < shards``.
    index: int
    #: Total runs in the full (unsharded) sweep.
    total: int
    #: This shard's runs, ascending by global index.
    runs: Tuple[Tuple[int, ScenarioSpec], ...]

    def __len__(self) -> int:
        return len(self.runs)


def plan_shard(
    specs: Sequence[ScenarioSpec], shards: int, index: int
) -> ShardPlan:
    """The slice of *specs* that shard *index* of *shards* executes."""
    if shards < 1:
        raise GridError(f"shard count must be at least 1, got {shards}")
    if not 0 <= index < shards:
        raise GridError(
            f"shard index must be in [0, {shards - 1}], got {index}"
        )
    runs = tuple(
        (global_index, spec)
        for global_index, spec in enumerate(specs)
        if global_index % shards == index
    )
    return ShardPlan(shards=shards, index=index, total=len(specs), runs=runs)


def plan_all_shards(specs: Sequence[ScenarioSpec], shards: int) -> List[ShardPlan]:
    """Every shard's plan — the planner's view of the whole sweep."""
    return [plan_shard(specs, shards, index) for index in range(shards)]
