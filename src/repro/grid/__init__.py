"""``repro.grid`` — never-recompute, scale-out sweep infrastructure.

Two halves turn the single-host campaign batch engine into a grid:

* the **result store** (:mod:`repro.grid.store`) — a content-addressed
  on-disk cache keyed on the SHA-256 of the canonical spec JSON, holding
  each run's deterministic metrics, its JSONL event stream and an
  integrity manifest (schema + producing-code fingerprint + artifact
  digests).  ``run_spec`` and ``run_batch`` consult it: a verified hit
  replays stored artifacts byte-identically instead of simulating.
* the **shard planner + resumable executor** (:mod:`repro.grid.shard`,
  :mod:`repro.grid.executor`) — deterministic round-robin partitioning of
  an expanded matrix over N independent workers, per-shard streaming
  execution that resumes from the store, and a merge that reassembles the
  exact single-host batch artifact set (``aggregate.json`` byte-identical).

CLI surface: ``python -m repro shard plan|run|merge`` and
``python -m repro cache stats|gc|clear``; ``repro run``/``repro batch``
take ``--cache DIR`` (or ``REPRO_CACHE_DIR``) with ``--no-cache`` /
``--refresh`` escape hatches.
"""

from repro.grid.executor import SHARD_SCHEMA, merge_shards, run_shard
from repro.grid.shard import ShardPlan, plan_all_shards, plan_shard
from repro.grid.store import (
    STORE_SCHEMA,
    GridError,
    GridUsageError,
    ResultStore,
    StoredResult,
    code_fingerprint,
)

__all__ = [
    "GridError",
    "GridUsageError",
    "ResultStore",
    "SHARD_SCHEMA",
    "STORE_SCHEMA",
    "ShardPlan",
    "StoredResult",
    "code_fingerprint",
    "merge_shards",
    "plan_all_shards",
    "plan_shard",
    "run_shard",
]
