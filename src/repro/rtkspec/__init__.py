"""RTK-Spec I and II — user-defined kernel specifications.

Section 4 of the paper: *"To guarantee SIM_API coverage to capture real RTOS
dynamics, we used SIM_API to build three kernel simulation models: RTK-Spec
I, II, and TRON.  RTK-Spec I (round robin scheduler) and II (priority-based
preemptive scheduler) are examples of user defined kernel specifications
running on 8051 micro-controllers."*

These two small kernels exercise the same SIM_API constructs as RTK-Spec TRON
but with a minimal task API (create/start/sleep/wakeup/delay/exit), which is
what a bare-metal 8051 scheduler typically offers.
"""

from repro.rtkspec.base import (
    KERNEL_MODELS,
    RTKSpecKernel,
    RTKTask,
    kernel_model_class,
)
from repro.rtkspec.rtk1 import RTKSpec1
from repro.rtkspec.rtk2 import RTKSpec2

__all__ = ["KERNEL_MODELS", "RTKSpecKernel", "RTKTask", "RTKSpec1",
           "RTKSpec2", "kernel_model_class"]
