"""RTK-Spec II: the priority-based preemptive kernel.

Identical task API to RTK-Spec I, but the external scheduler is the priority
preemptive one: a task becoming ready immediately preempts a lower-priority
running task (at the next preemption point), and equal priorities are served
FIFO with no time slicing.
"""

from __future__ import annotations

from repro.core.scheduler import PriorityScheduler
from repro.rtkspec.base import RTKSpecKernel
from repro.sysc.kernel import Simulator
from repro.sysc.time import SimTime


class RTKSpec2(RTKSpecKernel):
    """Priority-based preemptive kernel (RTK-Spec II)."""

    kernel_name = "RTK-Spec II"
    model_key = "rtkspec2"

    def __init__(
        self,
        simulator: Simulator,
        system_tick: "SimTime | int" = SimTime.ms(1),
        name: str = "rtkspec2",
    ):
        super().__init__(simulator, PriorityScheduler(), system_tick, name=name)
