"""The shared chassis of the RTK-Spec I / II user-defined kernels.

Both kernels offer the same minimal task API; they differ only in the
external scheduler handed to the SIM_API library and in what happens on each
system tick (RTK-Spec I rotates the time slice, RTK-Spec II relies purely on
priority preemption).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.core.events import ThreadKind
from repro.core.scheduler import Scheduler
from repro.core.simapi import SimApi
from repro.core.tthread import ThreadExit, TThread
from repro.sysc.kernel import Simulator
from repro.sysc.module import SCModule
from repro.sysc.process import Wait
from repro.sysc.time import SimTime

#: Signature of an RTK-Spec task function (no start code / exinf here).
RTKTaskFunction = Callable[[], Generator[object, object, None]]

#: Campaign model key -> kernel class; subclasses register themselves via
#: ``model_key`` so :class:`~repro.workload.KernelProfile` instantiates
#: kernels by spec name without hard-wiring the class list anywhere.
KERNEL_MODELS: Dict[str, type] = {}


def kernel_model_class(model_key: str) -> type:
    """The RTK-Spec kernel class registered under *model_key*."""
    try:
        return KERNEL_MODELS[model_key]
    except KeyError:
        known = ", ".join(sorted(KERNEL_MODELS))
        raise KeyError(
            f"unknown RTK-Spec kernel model {model_key!r} (known: {known})"
        ) from None


class RTKTask:
    """A task of the RTK-Spec I/II kernels."""

    def __init__(self, task_id: int, name: str, priority: int, thread: TThread):
        self.task_id = task_id
        self.name = name
        self.priority = priority
        self.thread = thread
        self.sleeping = False
        self.started = False

    def __repr__(self) -> str:
        return f"RTKTask(id={self.task_id}, name={self.name!r}, prio={self.priority})"


class RTKSpecKernel(SCModule):
    """Base class for the RTK-Spec I / II kernels."""

    #: Name reported by :meth:`describe`; subclasses override.
    kernel_name = "RTK-Spec"

    #: Campaign spec kernel key; subclasses that set it are registered in
    #: :data:`KERNEL_MODELS` automatically.
    model_key = ""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.__dict__.get("model_key"):
            KERNEL_MODELS[cls.model_key] = cls

    def __init__(
        self,
        simulator: Simulator,
        scheduler: Scheduler,
        system_tick: "SimTime | int" = SimTime.ms(1),
        name: str = "rtkspec",
        api: Optional[SimApi] = None,
    ):
        super().__init__(name, simulator)
        self.system_tick = SimTime.coerce(system_tick)
        self.api = api if api is not None else SimApi(
            simulator, scheduler=scheduler, system_tick=self.system_tick
        )
        self._tasks: Dict[int, RTKTask] = {}
        self._next_id = 1
        self.tick_count = 0
        self.sc_thread("tick", self._tick_process)

    # ------------------------------------------------------------------
    # Task API
    # ------------------------------------------------------------------
    def create_task(self, task_fn: RTKTaskFunction, priority: int = 10,
                    name: str = "") -> RTKTask:
        """Create a dormant task."""
        task_id = self._next_id
        self._next_id += 1
        task_name = name or f"rtk_task{task_id}"
        thread = self.api.create_thread(
            task_name, task_fn, priority=priority, kind=ThreadKind.TASK
        )
        task = RTKTask(task_id, task_name, priority, thread)
        self._tasks[task_id] = task
        return task

    def start_task(self, task: RTKTask) -> None:
        """Make a task ready and schedule."""
        task.started = True
        self.api.start_thread(task.thread)

    def sleep(self):
        """The calling task sleeps until :meth:`wakeup` (generator)."""
        task = self._task_of_running()
        task.sleeping = True
        yield from self.api.block_current()
        task.sleeping = False

    def wakeup(self, task: RTKTask) -> None:
        """Wake a task put to sleep with :meth:`sleep`."""
        if task.sleeping:
            self.api.wakeup(task.thread)

    def delay(self, duration: "SimTime | int"):
        """The calling task delays itself for *duration* (generator).

        The delay is realised as annotated idle spinning at the lowest
        possible rate: the task is simply removed from the CPU by sleeping on
        a timed wakeup, which is how a small 8051 kernel's delay queue behaves
        at tick granularity.
        """
        duration = SimTime.coerce(duration)
        task = self._task_of_running()
        task.sleeping = True
        self.simulator.schedule_callback(duration, lambda: self.wakeup(task))
        yield from self.api.block_current()
        task.sleeping = False

    def exit_task(self):
        """End the calling task (generator; never returns)."""
        raise ThreadExit()
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tasks(self) -> List[RTKTask]:
        """All created tasks ordered by identifier."""
        return [self._tasks[tid] for tid in sorted(self._tasks)]

    def describe(self) -> Dict[str, object]:
        """A short structural description (used by the scheduler ablation)."""
        return {
            "kernel": self.kernel_name,
            "scheduler": type(self.api.scheduler).__name__,
            "tick_ms": self.system_tick.to_ms(),
            "tasks": [task.name for task in self.tasks()],
        }

    def statistics(self) -> Dict[str, object]:
        """Kernel-level run statistics for the campaign runner."""
        return {
            "ticks": self.tick_count,
            "task_count": len(self._tasks),
            "sleeping_tasks": sum(1 for task in self._tasks.values() if task.sleeping),
            "service_calls": {},
            "service_call_total": 0,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _task_of_running(self) -> RTKTask:
        running = self.api.running
        if running is None:
            raise RuntimeError("no task is running")
        for task in self._tasks.values():
            if task.thread is running:
                return task
        raise RuntimeError(f"running thread {running.name!r} is not an RTK task")

    def _tick_process(self):
        tick_wait = Wait(self.system_tick)  # reused; the kernel never keeps it
        while True:
            yield tick_wait
            self.tick_count += 1
            self._on_tick()

    def _on_tick(self) -> None:
        """Per-tick policy hook; overridden by RTK-Spec I."""
        self.api.request_dispatch()
