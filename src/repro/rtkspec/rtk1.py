"""RTK-Spec I: the round-robin kernel.

Every *time slice* (a configurable number of system ticks) the running task
is rotated to the back of the ready queue and the next one runs.  Priorities
are accepted by the task API but ignored by the scheduler, which is exactly
what distinguishes it from RTK-Spec II in the paper's validation set.
"""

from __future__ import annotations

from repro.core.scheduler import RoundRobinScheduler
from repro.rtkspec.base import RTKSpecKernel
from repro.sysc.kernel import Simulator
from repro.sysc.time import SimTime


class RTKSpec1(RTKSpecKernel):
    """Round-robin kernel (RTK-Spec I)."""

    kernel_name = "RTK-Spec I"
    model_key = "rtkspec1"

    def __init__(
        self,
        simulator: Simulator,
        system_tick: "SimTime | int" = SimTime.ms(1),
        time_slice_ticks: int = 5,
        name: str = "rtkspec1",
    ):
        if time_slice_ticks <= 0:
            raise ValueError("time_slice_ticks must be positive")
        super().__init__(simulator, RoundRobinScheduler(), system_tick, name=name)
        self.time_slice_ticks = time_slice_ticks
        self._slice_counter = 0
        self.rotation_count = 0

    def _on_tick(self) -> None:
        self._slice_counter += 1
        if self._slice_counter >= self.time_slice_ticks:
            self._slice_counter = 0
            self.rotation_count += 1
            self.api.preempt_current()
        else:
            self.api.request_dispatch()
