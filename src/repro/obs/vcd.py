"""VCD (value change dump) encoding helpers.

Shared by the batch exporter (:meth:`repro.sysc.trace.TraceFile.to_vcd`) and
the streaming sink (:class:`repro.obs.sinks.VcdStreamSink`).  Two historical
bugs live here now, fixed once for both writers:

* identifiers were allocated as ``chr(33 + index)``, which walks off the end
  of the printable range past ~94 signals and even collides with VCD keyword
  characters; :func:`vcd_identifier` uses bijective base-94 numeration over
  the full printable identifier alphabet (``!`` .. ``~``), giving unique
  multi-character identifiers for any signal count;
* every variable was declared ``wire 32`` even for 1-bit boolean signals;
  :func:`vcd_width` sizes the declaration from the signal's value.
"""

from __future__ import annotations

#: Printable VCD identifier alphabet: '!' (33) through '~' (126).
_ALPHABET_SIZE = 94
_ALPHABET_BASE = 33


def vcd_identifier(index: int) -> str:
    """Unique printable identifier for the *index*-th declared variable.

    Bijective base-94: indices 0..93 map to single characters ``!``..``~``,
    index 94 onwards to multi-character identifiers (``!!``, ``"!``, ...).
    """
    if index < 0:
        raise ValueError("identifier index cannot be negative")
    out = []
    index += 1
    while index > 0:
        index -= 1
        out.append(chr(_ALPHABET_BASE + index % _ALPHABET_SIZE))
        index //= _ALPHABET_SIZE
    return "".join(out)


def vcd_width(value: object) -> int:
    """Bit width to declare for a signal whose current value is *value*."""
    if isinstance(value, bool):
        return 1
    return 32


def vcd_var(name: str, value: object, identifier: str) -> str:
    """A ``$var`` declaration line for one signal."""
    return f"$var wire {vcd_width(value)} {identifier} {name} $end"


def vcd_value(value: object, identifier: str) -> str:
    """A value-change line for one signal."""
    if isinstance(value, bool):
        return f"{int(value)}{identifier}"
    if isinstance(value, int):
        return f"b{value:b} {identifier}"
    return f"s{value} {identifier}"
