"""Pluggable sinks for the observability bus.

A sink is any object with a ``handle(event)`` method; subscribing it to an
:class:`~repro.obs.bus.EventBus` enables the topics it listens on.  A sink
may declare a ``topics`` tuple used as the default subscription set, and may
implement ``close()`` to flush/release resources when the run ends.

Sinks here cover the bounded-memory consumption patterns the campaign layer
needs:

* :class:`RingBufferSink` — keep the most recent N events (post-mortem
  debugging at bounded memory),
* :class:`ListSink` — keep everything (tests, small interactive runs),
* :class:`CounterSink` — per-``(topic, kind)`` tallies at O(1) memory,
* :class:`JsonlStreamSink` — stream JSON Lines to a file/stdout *during*
  the run instead of materializing the event list afterwards,
* :class:`VcdStreamSink` — stream a waveform dump of selected signals,
* :class:`HistogramSink` — stream selected numeric event fields into a
  bounded :class:`StreamingHistogram` (per-run percentile metrics at O(1)
  memory; the analytics report plane's latency distributions).

Every sink is a context manager (``with JsonlStreamSink(path) as sink:``)
and ``close()`` is idempotent, so an interrupted run still flushes a valid,
parseable prefix on the way out.

The Gantt builder (:class:`repro.core.gantt.GanttChart`) and the waveform
recorder (:class:`repro.sysc.trace.TraceFile`) are sinks too; they live with
their data models.
"""

from __future__ import annotations

import math
import sys
from collections import deque
from typing import (
    Any, Callable, Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union,
)

from repro.obs.bus import Event, canonical_json, encode_event_line, event_to_dict
from repro.obs.vcd import vcd_identifier, vcd_value, vcd_var


def _open_target(target: "Union[str, IO[str]]") -> "Tuple[IO[str], bool]":
    """Resolve a stream target: ``"-"`` → stdout, path → owned file handle,
    anything else is treated as an open stream borrowed from the caller.
    Returns ``(stream, owns_stream)``."""
    if target == "-":
        return sys.stdout, False
    if isinstance(target, str):
        return open(target, "w", encoding="utf-8"), True
    return target, False


class Sink:
    """Base class for bus sinks (subclassing is optional — duck typing works)."""

    #: Default topics :meth:`EventBus.subscribe` attaches the sink to.
    topics: Optional[Tuple[str, ...]] = None

    #: Whether the sink keeps a reference to handled events (or their fields
    #: dict) beyond the ``handle`` call.  ``False`` lets the topic reuse one
    #: pooled event across publishes (the allocation-free fast path); the
    #: default ``True`` is the safe assumption for unknown sinks.
    retains_events: bool = True

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        """Flush and release any resources the sink holds (idempotent)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # Close on the error path too: a crashed run must still flush the
        # stream so the file on disk is a valid, parseable prefix.
        self.close()


class ListSink(Sink):
    """Collects every event in arrival order (unbounded; tests and small runs)."""

    def __init__(self, topics: Optional[Sequence[str]] = None):
        if topics is not None:
            self.topics = tuple(topics)
        self.events: List[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The collected stream as JSON-safe dictionaries."""
        return [event_to_dict(event) for event in self.events]

    def clear(self) -> None:
        """Drop every collected event — pooled reuse across fused runs."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class RingBufferSink(Sink):
    """Keeps the most recent *capacity* events — bounded-memory post-mortems."""

    def __init__(self, capacity: int = 65536, topics: Optional[Sequence[str]] = None):
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        if topics is not None:
            self.topics = tuple(topics)
        self.capacity = capacity
        self._buffer: "deque[Event]" = deque(maxlen=capacity)
        self.seen = 0

    def handle(self, event: Event) -> None:
        self.seen += 1
        self._buffer.append(event)

    @property
    def dropped(self) -> int:
        """Events that fell off the front of the ring."""
        return self.seen - len(self._buffer)

    def events(self) -> List[Event]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def of_topic(self, topic: str) -> List[Event]:
        """Retained events of one topic."""
        return [event for event in self._buffer if event.topic == topic]

    def of_kind(self, kind: str) -> List[Event]:
        """Retained events of one kind."""
        return [event for event in self._buffer if event.kind == kind]

    def __len__(self) -> int:
        return len(self._buffer)


class CounterSink(Sink):
    """Tallies events per ``(topic, kind)`` without retaining them."""

    retains_events = False

    def __init__(self, topics: Optional[Sequence[str]] = None):
        if topics is not None:
            self.topics = tuple(topics)
        self.counts: Dict[Tuple[str, str], int] = {}

    def handle(self, event: Event) -> None:
        key = (event.topic, event.kind)
        self.counts[key] = self.counts.get(key, 0) + 1

    def count(self, topic: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Total over every ``(topic, kind)`` cell matching the filters."""
        return sum(
            value for (event_topic, event_kind), value in self.counts.items()
            if (topic is None or event_topic == topic)
            and (kind is None or event_kind == kind)
        )

    def total(self) -> int:
        """All events seen."""
        return sum(self.counts.values())

    def snapshot(self) -> Dict[str, int]:
        """The tallies as ``{"topic/kind": count}`` in sorted key order.

        Iteration order of ``counts`` follows arrival order, which varies
        run to run; the snapshot sorts so any JSON rendered from it is
        byte-stable across hosts and Python hash seeds.
        """
        return {
            f"{topic}/{kind}": self.counts[(topic, kind)]
            for topic, kind in sorted(self.counts)
        }


class JsonlStreamSink(Sink):
    """Streams events as JSON Lines while the simulation runs.

    *target* may be a path (opened and owned by the sink), ``"-"`` for
    stdout, or any open text stream (flushed but not closed).  Lines use the
    campaign's canonical encoding (sorted keys, tight separators) so a
    streamed file is byte-identical to one written from a collected list.

    Lines are rendered immediately (through the fast ``sched`` encoder) but
    buffered and handed to the stream in ``writelines`` batches of
    *batch_lines*; each batch consists of whole lines only, so however the
    run ends — normal close, error-path ``__exit__``, or a kill between
    batches — the file on disk is always a valid JSONL prefix.
    """

    retains_events = False

    def __init__(
        self,
        target: Union[str, IO[str]],
        topics: Optional[Sequence[str]] = None,
        batch_lines: int = 256,
    ):
        if topics is not None:
            self.topics = tuple(topics)
        if batch_lines <= 0:
            raise ValueError("batch_lines must be positive")
        self._stream, self._owns_stream = _open_target(target)
        self._closed = False
        self._batch_lines = batch_lines
        self._pending: List[str] = []
        self.lines_written = 0

    def handle(self, event: Event) -> None:
        pending = self._pending
        pending.append(encode_event_line(event) + "\n")
        self.lines_written += 1
        if len(pending) >= self._batch_lines:
            self._stream.writelines(pending)
            pending.clear()

    def flush(self) -> None:
        """Drain the pending batch and flush the underlying stream."""
        if self._pending:
            self._stream.writelines(self._pending)
            self._pending.clear()
        self._stream.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._pending:
                self._stream.writelines(self._pending)
                self._pending.clear()
            self._stream.flush()
        except ValueError:  # pragma: no cover - already-closed caller stream
            return
        if self._owns_stream:
            self._stream.close()


class VcdStreamSink(Sink):
    """Streams a VCD waveform of selected signals as their changes settle.

    The header (declarations plus initial ``#0`` values) is written at
    construction from the signals' current values, so create the sink before
    the run starts.  Unlike :meth:`TraceFile.to_vcd` nothing is retained in
    memory — each settled change goes straight to the stream.
    """

    topics = ("signal",)
    retains_events = False

    def __init__(self, signals: Iterable[Any], target: Union[str, IO[str]],
                 timescale: str = "1ns"):
        self._stream, self._owns_stream = _open_target(target)
        self._closed = False
        self._identifiers: Dict[str, str] = {}
        # Identity map so a same-named signal that was *not* declared can
        # never corrupt a declared signal's waveform.
        self._identifiers_by_signal: Dict[Any, str] = {}
        self._last_time_ns = 0
        lines = [f"$timescale {timescale} $end", "$scope module trace $end"]
        initial_values = []
        for index, signal in enumerate(signals):
            identifier = vcd_identifier(index)
            self._identifiers[signal.name] = identifier
            self._identifiers_by_signal[signal] = identifier
            lines.append(vcd_var(signal.name, signal.read(), identifier))
            initial_values.append(vcd_value(signal.read(), identifier))
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        lines.append("#0")
        lines.extend(initial_values)
        self._stream.write("\n".join(lines) + "\n")

    def handle(self, event: Event) -> None:
        publisher = event.fields.get("_signal")
        if publisher is not None:
            identifier = self._identifiers_by_signal.get(publisher)
        else:
            identifier = self._identifiers.get(event.fields.get("signal"))
        if identifier is None:
            return
        if event.t_ns != self._last_time_ns:
            self._stream.write(f"#{event.t_ns}\n")
            self._last_time_ns = event.t_ns
        self._stream.write(vcd_value(event.fields["new"], identifier) + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._stream.flush()
        except ValueError:  # pragma: no cover - already-closed caller stream
            return
        if self._owns_stream:
            self._stream.close()


class StreamingHistogram:
    """A log2-bucketed streaming histogram: O(1) memory, deterministic.

    Values are tallied into power-of-two buckets (bucket *b* covers
    ``(2^(b-1), 2^b]``; non-positive values land in a dedicated zero
    bucket), so the summary a run produces depends only on the values
    fed in — never on their count or arrival order beyond the tallies
    themselves.  Percentiles interpolate linearly inside the covering
    bucket and clamp to the observed ``[min, max]``, which keeps small
    samples exact at the extremes and large samples within a 2× bucket
    of the true quantile.
    """

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    @staticmethod
    def _bucket_of(value: float) -> int:
        if value <= 0:
            return -(2 ** 30)  # the zero/negative bucket, below everything
        mantissa, exponent = math.frexp(value)
        # frexp: value = mantissa * 2^exponent with mantissa in [0.5, 1).
        # Exact powers of two (mantissa 0.5) belong to the lower bucket.
        return exponent - 1 if mantissa == 0.5 else exponent

    def add(self, value: float) -> None:
        """Tally one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = self._bucket_of(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold *other*'s tallies into this histogram."""
        self.count += other.count
        self.total += other.total
        for source in (other.min, other.max):
            if source is None:
                continue
            if self.min is None or source < self.min:
                self.min = source
            if self.max is None or source > self.max:
                self.max = source
        for bucket, tally in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + tally

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-quantile (``q`` in [0, 1]) by bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile wants q in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        rank = q * self.count
        cumulative = 0
        for bucket in sorted(self._buckets):
            tally = self._buckets[bucket]
            if cumulative + tally >= rank:
                if bucket == self._bucket_of(0.0):
                    return max(0.0, self.min)
                low, high = 2.0 ** (bucket - 1), 2.0 ** bucket
                fraction = (rank - cumulative) / tally
                value = low + (high - low) * fraction
                return min(max(value, self.min), self.max)
            cumulative += tally
        return self.max

    def snapshot(self) -> Dict[str, float]:
        """Count/min/max/mean and fixed percentiles, JSON-safe and sorted."""
        return {
            "count": self.count,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class HistogramSink(Sink):
    """Streams one numeric event field into a :class:`StreamingHistogram`.

    By default it measures ``sched``/``exec`` slice durations (``dur_ns``) —
    the per-run latency distribution the analytics report plane summarizes —
    but any topic/kind/field combination works, and a ``value`` callable can
    derive the measure from the whole event (e.g. inter-dispatch gaps).
    Events of matching kind that lack the field are counted as ``skipped``
    rather than raising, so a sink can sit on a mixed stream.
    """

    retains_events = False

    def __init__(
        self,
        field: str = "dur_ns",
        topics: Sequence[str] = ("sched",),
        kinds: Optional[Sequence[str]] = ("exec",),
        value: Optional[Callable[[Event], Optional[float]]] = None,
    ):
        self.topics = tuple(topics)
        self.field = field
        self.kinds = tuple(kinds) if kinds is not None else None
        self._value = value
        if value is not None:
            # A caller-supplied extractor sees the raw event; assume it may
            # hold on to it, which keeps topic pooling off.
            self.retains_events = True
        self.histogram = StreamingHistogram()
        self.skipped = 0

    def handle(self, event: Event) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        if self._value is not None:
            measured = self._value(event)
            if measured is None:
                self.skipped += 1
                return
        else:
            raw = event.fields.get(self.field)
            if not isinstance(raw, (int, float)) or isinstance(raw, bool):
                self.skipped += 1
                return
            measured = raw
        self.histogram.add(measured)

    def snapshot(self) -> Dict[str, float]:
        """The underlying histogram's summary document."""
        return self.histogram.snapshot()
