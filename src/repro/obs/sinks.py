"""Pluggable sinks for the observability bus.

A sink is any object with a ``handle(event)`` method; subscribing it to an
:class:`~repro.obs.bus.EventBus` enables the topics it listens on.  A sink
may declare a ``topics`` tuple used as the default subscription set, and may
implement ``close()`` to flush/release resources when the run ends.

Sinks here cover the bounded-memory consumption patterns the campaign layer
needs:

* :class:`RingBufferSink` — keep the most recent N events (post-mortem
  debugging at bounded memory),
* :class:`ListSink` — keep everything (tests, small interactive runs),
* :class:`CounterSink` — per-``(topic, kind)`` tallies at O(1) memory,
* :class:`JsonlStreamSink` — stream JSON Lines to a file/stdout *during*
  the run instead of materializing the event list afterwards,
* :class:`VcdStreamSink` — stream a waveform dump of selected signals.

The Gantt builder (:class:`repro.core.gantt.GanttChart`) and the waveform
recorder (:class:`repro.sysc.trace.TraceFile`) are sinks too; they live with
their data models.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.bus import Event, canonical_json, event_to_dict
from repro.obs.vcd import vcd_identifier, vcd_value, vcd_var


def _open_target(target: "Union[str, IO[str]]") -> "Tuple[IO[str], bool]":
    """Resolve a stream target: ``"-"`` → stdout, path → owned file handle,
    anything else is treated as an open stream borrowed from the caller.
    Returns ``(stream, owns_stream)``."""
    if target == "-":
        return sys.stdout, False
    if isinstance(target, str):
        return open(target, "w", encoding="utf-8"), True
    return target, False


class Sink:
    """Base class for bus sinks (subclassing is optional — duck typing works)."""

    #: Default topics :meth:`EventBus.subscribe` attaches the sink to.
    topics: Optional[Tuple[str, ...]] = None

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        """Flush and release any resources the sink holds."""


class ListSink(Sink):
    """Collects every event in arrival order (unbounded; tests and small runs)."""

    def __init__(self, topics: Optional[Sequence[str]] = None):
        if topics is not None:
            self.topics = tuple(topics)
        self.events: List[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The collected stream as JSON-safe dictionaries."""
        return [event_to_dict(event) for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


class RingBufferSink(Sink):
    """Keeps the most recent *capacity* events — bounded-memory post-mortems."""

    def __init__(self, capacity: int = 65536, topics: Optional[Sequence[str]] = None):
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        if topics is not None:
            self.topics = tuple(topics)
        self.capacity = capacity
        self._buffer: "deque[Event]" = deque(maxlen=capacity)
        self.seen = 0

    def handle(self, event: Event) -> None:
        self.seen += 1
        self._buffer.append(event)

    @property
    def dropped(self) -> int:
        """Events that fell off the front of the ring."""
        return self.seen - len(self._buffer)

    def events(self) -> List[Event]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def of_topic(self, topic: str) -> List[Event]:
        """Retained events of one topic."""
        return [event for event in self._buffer if event.topic == topic]

    def of_kind(self, kind: str) -> List[Event]:
        """Retained events of one kind."""
        return [event for event in self._buffer if event.kind == kind]

    def __len__(self) -> int:
        return len(self._buffer)


class CounterSink(Sink):
    """Tallies events per ``(topic, kind)`` without retaining them."""

    def __init__(self, topics: Optional[Sequence[str]] = None):
        if topics is not None:
            self.topics = tuple(topics)
        self.counts: Dict[Tuple[str, str], int] = {}

    def handle(self, event: Event) -> None:
        key = (event.topic, event.kind)
        self.counts[key] = self.counts.get(key, 0) + 1

    def count(self, topic: Optional[str] = None, kind: Optional[str] = None) -> int:
        """Total over every ``(topic, kind)`` cell matching the filters."""
        return sum(
            value for (event_topic, event_kind), value in self.counts.items()
            if (topic is None or event_topic == topic)
            and (kind is None or event_kind == kind)
        )

    def total(self) -> int:
        """All events seen."""
        return sum(self.counts.values())


class JsonlStreamSink(Sink):
    """Streams events as JSON Lines while the simulation runs.

    *target* may be a path (opened and owned by the sink), ``"-"`` for
    stdout, or any open text stream (flushed but not closed).  Lines use the
    campaign's canonical encoding (sorted keys, tight separators) so a
    streamed file is byte-identical to one written from a collected list.
    """

    def __init__(self, target: Union[str, IO[str]], topics: Optional[Sequence[str]] = None):
        if topics is not None:
            self.topics = tuple(topics)
        self._stream, self._owns_stream = _open_target(target)
        self.lines_written = 0

    def handle(self, event: Event) -> None:
        self._stream.write(canonical_json(event_to_dict(event)))
        self._stream.write("\n")
        self.lines_written += 1

    def close(self) -> None:
        try:
            self._stream.flush()
        except ValueError:  # pragma: no cover - already-closed caller stream
            return
        if self._owns_stream:
            self._stream.close()


class VcdStreamSink(Sink):
    """Streams a VCD waveform of selected signals as their changes settle.

    The header (declarations plus initial ``#0`` values) is written at
    construction from the signals' current values, so create the sink before
    the run starts.  Unlike :meth:`TraceFile.to_vcd` nothing is retained in
    memory — each settled change goes straight to the stream.
    """

    topics = ("signal",)

    def __init__(self, signals: Iterable[Any], target: Union[str, IO[str]],
                 timescale: str = "1ns"):
        self._stream, self._owns_stream = _open_target(target)
        self._identifiers: Dict[str, str] = {}
        # Identity map so a same-named signal that was *not* declared can
        # never corrupt a declared signal's waveform.
        self._identifiers_by_signal: Dict[Any, str] = {}
        self._last_time_ns = 0
        lines = [f"$timescale {timescale} $end", "$scope module trace $end"]
        initial_values = []
        for index, signal in enumerate(signals):
            identifier = vcd_identifier(index)
            self._identifiers[signal.name] = identifier
            self._identifiers_by_signal[signal] = identifier
            lines.append(vcd_var(signal.name, signal.read(), identifier))
            initial_values.append(vcd_value(signal.read(), identifier))
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        lines.append("#0")
        lines.extend(initial_values)
        self._stream.write("\n".join(lines) + "\n")

    def handle(self, event: Event) -> None:
        publisher = event.fields.get("_signal")
        if publisher is not None:
            identifier = self._identifiers_by_signal.get(publisher)
        else:
            identifier = self._identifiers.get(event.fields.get("signal"))
        if identifier is None:
            return
        if event.t_ns != self._last_time_ns:
            self._stream.write(f"#{event.t_ns}\n")
            self._last_time_ns = event.t_ns
        self._stream.write(vcd_value(event.fields["new"], identifier) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
