"""Replay: turn stored JSONL event streams back into bus events.

The streaming sinks serialize bus events into JSON documents
(:func:`repro.obs.bus.event_to_dict`); this module is the inverse for the
``sched`` topic, which is the stream the campaign layer persists.  Replaying
matters for the grid result store: a cache hit must rebuild every derived
report — above all the Gantt chart — from the stored artifacts instead of
re-simulating::

    from repro.core.gantt import GanttChart
    from repro.obs.replay import read_events_jsonl

    chart = GanttChart.from_events(read_events_jsonl("events.jsonl"))

Round-trip contract: for any event the campaign stream writes,
``event_from_dict(event_to_dict(e))`` reproduces ``e``'s topic, kind,
timestamp and (for ``sched`` events) the field shape the Gantt sink
consumes.  Timestamps are exact — ``t_ms`` is ``t_ns / 1e6`` and the
round-trip ``round(t_ms * 1e6)`` recovers the integer nanosecond for any
simulation time below ~2^52 ns (≈ 52 days), far beyond campaign horizons.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterator, Mapping, Union

from repro.core.events import ExecutionContext
from repro.obs.bus import Event


def _ns(t_ms: float) -> int:
    """Recover the integer nanosecond timestamp behind a ``t_ms`` field."""
    return round(t_ms * 1_000_000)


def event_from_dict(document: Mapping[str, Any]) -> Event:
    """Rebuild a bus :class:`Event` from its serialized JSON document.

    ``sched`` documents (no explicit ``topic`` key) are restored to the
    exact in-process shape the publishers emit — ``exec`` slices get their
    ``dur_ns`` and :class:`ExecutionContext` back — so sinks written against
    the live stream (``GanttChart``, counters, ring buffers) consume replayed
    streams unchanged.  Documents of other topics keep their payload fields
    as serialized.
    """
    topic = document.get("topic", "sched")
    kind = document["kind"]
    t_ns = _ns(document["t_ms"])
    if topic == "sched":
        if kind == "exec":
            return Event("sched", "exec", t_ns, {
                "thread": document["thread"],
                "dur_ns": _ns(document["dur_ms"]),
                "context": ExecutionContext(document["context"]),
                "energy_nj": document["energy_nj"],
                "label": document["label"],
            })
        return Event("sched", kind, t_ns, {"thread": document["thread"]})
    fields: Dict[str, Any] = {
        key: value for key, value in document.items()
        if key not in ("topic", "kind", "t_ms")
    }
    return Event(topic, kind, t_ns, fields)


def read_events_jsonl(
    source: Union[str, IO[str]], recover: bool = False,
) -> Iterator[Event]:
    """Stream bus events out of a JSONL file (path or open text stream).

    Blank lines are skipped; anything else must be one serialized event per
    line, as written by :class:`~repro.obs.sinks.JsonlStreamSink` or
    :meth:`~repro.campaign.metrics.RunResult.write_events`.

    With ``recover=True`` lines that fail to decode — malformed JSON, or a
    valid JSON document missing required event fields (e.g. the truncated
    tail of an interrupted run) — are skipped instead of raising, so a
    partial file still yields its valid prefix.  The default stays strict:
    stored cache artifacts are digest-verified before replay, so a decode
    error there is corruption worth crashing on.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            yield from _decode_lines(handle, recover)
    else:
        yield from _decode_lines(source, recover)


def _decode_lines(handle: IO[str], recover: bool = False) -> Iterator[Event]:
    for line in handle:
        line = line.strip()
        if not line:
            continue
        if recover:
            try:
                yield event_from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                continue
        else:
            yield event_from_dict(json.loads(line))
