"""The observability bus: one streaming event pipeline for every layer.

The paper's deliverable is *visibility into RTOS dynamics* — waveform probes
(Fig. 4), execution traces (Fig. 6), kernel data-structure listings (Fig. 8).
Before this module each of those was recorded through a bespoke mechanism
(flat trace lists, in-memory Gantt accumulation, post-run JSONL conversion).
:class:`EventBus` replaces them with a single structured pipeline:

* **Publishers** (the simulation kernel, signals, SIM_API, the T-Kernel
  service layer, BFM drivers, the campaign runner) emit typed events onto
  named *topics*.
* **Sinks** subscribe to topics and consume the stream as it happens: a
  bounded ring buffer, a streaming JSONL writer, a streaming VCD writer, the
  Gantt-chart builder (see :mod:`repro.obs.sinks` and
  :class:`repro.core.gantt.GanttChart`).

Topics
------

==========  ==========================================================
``kernel``  DES kernel internals: timed advances, delta cycles,
            process lifecycle (:class:`repro.sysc.kernel.Simulator`)
``sched``   SIM_API dispatching: dispatch/preempt/interrupted/sleep
            markers and ``exec`` slices (:class:`repro.core.simapi.SimApi`)
``svc``     T-Kernel service-call enter/exit
            (:class:`repro.tkernel.kernel.TKernelOS`)
``irq``     interrupt raising and ISR dispatch
``signal``  settled signal value changes (:class:`repro.sysc.signal.Signal`)
``bfm``     BFM bus transactions (:class:`repro.bfm.driver.BusDriver`)
``campaign`` campaign run lifecycle (:func:`repro.campaign.runner.run_spec`)
``telemetry`` pipeline phase spans — compose/build/run/store/merge
            wall-clock timings emitted by the campaign and grid layers
            (:mod:`repro.analytics.telemetry`)
==========  ==========================================================

The ``telemetry`` topic is the one stream that carries *wall-clock* data
(phase durations in host seconds).  It exists for sweep profiling only and
is contractually excluded from everything deterministic: telemetry never
enters spec hashes, stored result-store artifacts, aggregate documents or
golden streams — it is written to sidecar ``telemetry.jsonl`` files beside
the outputs, never inside them.

The zero-cost fast path
-----------------------

Publishing must cost *nothing* when nobody listens: production-scale campaign
sweeps run with no sinks attached, and the paper's speed claims (Table 2)
depend on instrumentation not taxing the simulation.  Every publisher
therefore holds a direct reference to its :class:`Topic` and guards the
publish site with the topic's ``enabled`` flag::

    topic = self._obs_sched            # cached at construction
    if topic.enabled:                  # plain attribute read, no call
        topic.emit("dispatch", t_ns, thread=name)

``enabled`` is maintained by ``attach``/``detach``; when it is ``False`` the
publish site performs one attribute load and one branch — no closure, no
record construction, no dictionary allocation.  The throughput benchmark
(``benchmarks/test_obs_bus_overhead.py``) asserts this stays true.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: The fixed topic namespace of the bus.
TOPICS: Tuple[str, ...] = (
    "kernel", "sched", "svc", "irq", "signal", "bfm", "campaign", "telemetry",
)


class Event:
    """One published event: a topic, a kind, a timestamp and payload fields.

    Events are only constructed on the slow path (at least one sink attached
    to the topic); ``__slots__`` keeps them cheap even then.
    """

    __slots__ = ("topic", "kind", "t_ns", "fields")

    def __init__(self, topic: str, kind: str, t_ns: int, fields: Dict[str, Any]):
        self.topic = topic
        self.kind = kind
        self.t_ns = t_ns
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary form (see :func:`event_to_dict`)."""
        return event_to_dict(self)

    def __repr__(self) -> str:
        return (
            f"Event({self.topic}/{self.kind} @ {self.t_ns}ns, "
            f"fields={self.fields!r})"
        )


class Topic:
    """One named event stream with its attached sinks.

    ``enabled`` is the publisher-side fast-path flag: it is ``True`` exactly
    while at least one sink is attached, so publishers can skip all event
    construction with a single attribute check.

    The *enabled* path is cheap too: while every attached sink declares
    ``retains_events = False`` (it consumes the event inside ``handle`` and
    keeps no reference to the event or its fields dict), the topic reuses a
    single pooled :class:`Event` and fields dict across publishes, so the
    positional fast emits (:meth:`emit1`, :meth:`emit_fields`) allocate
    nothing per event.  Any sink without the flag (the retaining default)
    turns pooling off and every publish builds a fresh event, as before.
    """

    __slots__ = ("name", "enabled", "_sinks", "_pooled_event", "_pooled_fields")

    def __init__(self, name: str):
        self.name = name
        self.enabled = False
        self._sinks: List[Any] = []
        self._pooled_event: Optional[Event] = None
        self._pooled_fields: Optional[Dict[str, Any]] = None

    def attach(self, sink: Any) -> None:
        """Attach *sink* (an object with ``handle(event)``); idempotent."""
        if sink not in self._sinks:
            self._sinks.append(sink)
        self.enabled = True
        self._refresh_pooling()

    def detach(self, sink: Any) -> None:
        """Detach *sink* if attached; disables the topic when none remain."""
        if sink in self._sinks:
            self._sinks.remove(sink)
        self.enabled = bool(self._sinks)
        self._refresh_pooling()

    def _refresh_pooling(self) -> None:
        sinks = self._sinks
        if sinks and all(
            getattr(sink, "retains_events", True) is False for sink in sinks
        ):
            if self._pooled_event is None:
                fields: Dict[str, Any] = {}
                self._pooled_fields = fields
                self._pooled_event = Event(self.name, "", 0, fields)
        else:
            self._pooled_event = None
            self._pooled_fields = None

    def sink_count(self) -> int:
        """Number of attached sinks."""
        return len(self._sinks)

    def emit(self, kind: str, t_ns: int, **fields: Any) -> None:
        """Publish one event to every attached sink.

        Publishers must only call this behind an ``if topic.enabled:`` guard;
        calling it on a disabled topic is harmless but wastes the fast path.
        """
        event = self._pooled_event
        if event is not None:
            event.kind = kind
            event.t_ns = t_ns
            event.fields = fields
        else:
            event = Event(self.name, kind, t_ns, fields)
        for sink in self._sinks:
            sink.handle(event)

    def emit1(self, kind: str, t_ns: int, name: str, value: Any) -> None:
        """Publish a one-field event without packing a kwargs dict.

        The marker fast path: with pooling active this allocates nothing —
        the pooled event and fields dict are updated in place.
        """
        event = self._pooled_event
        if event is not None:
            fields = self._pooled_fields
            fields.clear()
            fields[name] = value
            event.kind = kind
            event.t_ns = t_ns
            event.fields = fields
        else:
            event = Event(self.name, kind, t_ns, {name: value})
        for sink in self._sinks:
            sink.handle(event)

    def emit_fields(
        self, kind: str, t_ns: int, names: Tuple[str, ...], values: Tuple[Any, ...]
    ) -> None:
        """Publish an event from parallel (names, values) tuples.

        The multi-field fast path: *names* is a module-constant tuple at the
        publish site, *values* a small per-publish tuple — with pooling
        active that tuple is the only per-event allocation.
        """
        event = self._pooled_event
        if event is not None:
            fields = self._pooled_fields
            fields.clear()
            for name, value in zip(names, values):
                fields[name] = value
            event.kind = kind
            event.t_ns = t_ns
            event.fields = fields
        else:
            event = Event(self.name, kind, t_ns, dict(zip(names, values)))
        for sink in self._sinks:
            sink.handle(event)

    def __repr__(self) -> str:
        return f"Topic({self.name!r}, sinks={len(self._sinks)}, enabled={self.enabled})"


class EventBus:
    """A set of topics with per-topic subscription.

    Every :class:`~repro.sysc.kernel.Simulator` owns one bus (``sim.obs``) so
    that concurrent simulators — the campaign batch engine runs many in one
    process over its lifetime — never share instrumentation state.
    """

    __slots__ = ("_topics",)

    def __init__(self) -> None:
        self._topics: Dict[str, Topic] = {name: Topic(name) for name in TOPICS}

    def topic(self, name: str) -> Topic:
        """The named topic; raises :class:`KeyError` outside :data:`TOPICS`."""
        return self._topics[name]

    def topics(self) -> List[Topic]:
        """All topics of the bus."""
        return list(self._topics.values())

    def subscribe(self, sink: Any, topics: Optional[Sequence[str]] = None) -> Any:
        """Attach *sink* to the named topics.

        With ``topics=None`` the sink's own ``topics`` attribute is used,
        falling back to every topic.  Returns the sink (handy for one-liners).
        """
        names: Iterable[str]
        if topics is not None:
            names = topics
        else:
            sink_topics = getattr(sink, "topics", None)
            # An explicit empty tuple means "no default topics", not "all".
            names = TOPICS if sink_topics is None else sink_topics
        for name in names:
            self._topics[name].attach(sink)
        return sink

    def unsubscribe(self, sink: Any) -> None:
        """Detach *sink* from every topic it is attached to."""
        for topic in self._topics.values():
            topic.detach(sink)

    def any_enabled(self) -> bool:
        """Whether any topic currently has a sink attached."""
        return any(topic.enabled for topic in self._topics.values())

    def __repr__(self) -> str:
        active = [t.name for t in self._topics.values() if t.enabled]
        return f"EventBus(active_topics={active})"


# ----------------------------------------------------------------------
# Event serialization
# ----------------------------------------------------------------------
def canonical_json(document: Mapping[str, Any]) -> str:
    """Deterministic JSON encoding (sorted keys, tight separators).

    The single definition behind both the streaming sinks and the campaign
    metrics/event files — byte-identity guarantees across the two depend on
    there being exactly one encoder.
    """
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def event_to_dict(event: Event) -> Dict[str, Any]:
    """Convert an event into the JSON document the streaming sinks write.

    ``sched`` events keep the exact shape of the historical Gantt-derived
    campaign stream (``events_from_gantt``) so that event files produced by
    live streaming are byte-identical to the old post-run conversion:
    markers are ``{t_ms, thread, kind}`` and execution slices are
    ``{t_ms, thread, kind: "exec", dur_ms, context, energy_nj, label}``.
    Other topics serialize generically as ``{t_ms, topic, kind, **fields}``;
    underscore-prefixed payload keys are in-process-only (rich objects for
    sinks that need identity, e.g. the publishing signal) and are dropped.
    """
    fields = event.fields
    if event.topic == "sched":
        if event.kind == "exec":
            return {
                "t_ms": event.t_ns / 1_000_000,
                "thread": fields["thread"],
                "kind": "exec",
                "dur_ms": fields["dur_ns"] / 1_000_000,
                "context": fields["context"].value,
                "energy_nj": fields["energy_nj"],
                "label": fields["label"],
            }
        return {
            "t_ms": event.t_ns / 1_000_000,
            "thread": fields["thread"],
            "kind": event.kind,
        }
    document: Dict[str, Any] = {
        "t_ms": event.t_ns / 1_000_000,
        "topic": event.topic,
        "kind": event.kind,
    }
    for key, value in fields.items():
        if key.startswith("_"):
            continue
        document[key] = _json_safe(value)
    return document


def _json_safe(value: Any) -> Any:
    """Coerce a payload value into something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    nanoseconds = getattr(value, "nanoseconds", None)
    if isinstance(nanoseconds, int):  # SimTime without importing sysc here
        return nanoseconds / 1_000_000
    return str(value)


# The string escaper of the stdlib encoder: identical output to json.dumps
# with the default ensure_ascii=True (canonical_json's configuration).
_encode_string = json.encoder.encode_basestring_ascii

# json.dumps renders floats through float.__repr__ and ints through
# int.__repr__; reusing those keeps the fast lines byte-identical.
_float_repr = float.__repr__
_int_repr = int.__repr__
_INFINITIES = (float("inf"), float("-inf"))


def _encode_number(value: Any) -> str:
    """Render a number exactly as ``json.dumps`` would, or raise TypeError.

    Strict on types: ``bool`` (a subclass of int that json renders as
    ``true``/``false``) and non-finite floats (json spells them
    ``Infinity``/``NaN``) are rejected so the caller falls back to the
    generic encoder instead of silently diverging.
    """
    cls = value.__class__
    if cls is float:
        if value != value or value in _INFINITIES:
            raise TypeError("non-finite float")
        return _float_repr(value)
    if cls is int:
        return _int_repr(value)
    raise TypeError(f"not a plain number: {value!r}")


def encode_event_line(event: Event) -> str:
    """``canonical_json(event_to_dict(event))``, fast-pathed for ``sched``.

    The streaming-sink hot loop: ``sched`` markers and ``exec`` slices are
    rendered through pre-sorted literal key prefixes plus the stdlib's own
    string escaper and number reprs, skipping the dict build and the
    ``json.dumps`` sort machinery.  Output is byte-identical to the generic
    route; any unexpected field type falls back to it.
    """
    if event.topic != "sched":
        return canonical_json(event_to_dict(event))
    fields = event.fields
    kind = event.kind
    try:
        if kind == "exec":
            context = fields["context"]
            if isinstance(context, enum.Enum):
                context = context.value
            thread = fields["thread"]
            label = fields["label"]
            if not (
                context.__class__ is str
                and thread.__class__ is str
                and label.__class__ is str
            ):
                return canonical_json(event_to_dict(event))
            return (
                '{"context":' + _encode_string(context)
                + ',"dur_ms":' + _encode_number(fields["dur_ns"] / 1_000_000)
                + ',"energy_nj":' + _encode_number(fields["energy_nj"])
                + ',"kind":"exec","label":' + _encode_string(label)
                + ',"t_ms":' + _encode_number(event.t_ns / 1_000_000)
                + ',"thread":' + _encode_string(thread)
                + "}"
            )
        thread = fields["thread"]
        if not (kind.__class__ is str and thread.__class__ is str):
            return canonical_json(event_to_dict(event))
        return (
            '{"kind":' + _encode_string(kind)
            + ',"t_ms":' + _encode_number(event.t_ns / 1_000_000)
            + ',"thread":' + _encode_string(thread)
            + "}"
        )
    except (KeyError, TypeError):
        return canonical_json(event_to_dict(event))
