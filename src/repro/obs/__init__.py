"""``repro.obs`` — the unified observability bus.

One streaming event pipeline across the DES kernel, RTOS model, BFM and
campaign layers.  See :mod:`repro.obs.bus` for the architecture and the
zero-cost publishing contract, :mod:`repro.obs.sinks` for the consumption
patterns, and :mod:`repro.obs.replay` for rebuilding events (and the Gantt
chart) from stored JSONL streams without re-simulating.
"""

from repro.obs.bus import (
    TOPICS,
    Event,
    EventBus,
    Topic,
    canonical_json,
    event_to_dict,
)
from repro.obs.sinks import (
    CounterSink,
    HistogramSink,
    JsonlStreamSink,
    ListSink,
    RingBufferSink,
    Sink,
    StreamingHistogram,
    VcdStreamSink,
)
from repro.obs.replay import event_from_dict, read_events_jsonl
from repro.obs.vcd import vcd_identifier, vcd_value, vcd_var, vcd_width

__all__ = [
    "TOPICS",
    "Event",
    "EventBus",
    "Topic",
    "canonical_json",
    "event_to_dict",
    "event_from_dict",
    "read_events_jsonl",
    "Sink",
    "ListSink",
    "RingBufferSink",
    "CounterSink",
    "HistogramSink",
    "StreamingHistogram",
    "JsonlStreamSink",
    "VcdStreamSink",
    "vcd_identifier",
    "vcd_value",
    "vcd_var",
    "vcd_width",
]
