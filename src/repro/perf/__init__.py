"""``repro.perf`` — the performance-trend subsystem.

Benchmarks the simulator's hot plane (kernel wait throughput, SIM_API
dispatch rate, scheduler operations), regenerates the paper's Table-2 S/R
speed measure, and times the campaign registry's scenarios by subscribing a
:class:`~repro.obs.sinks.CounterSink` to the observability bus — the
ROADMAP's prescribed aggregation path, no bespoke recording.

``python -m repro bench`` runs everything and writes the ``BENCH_PR<n>.json``
trajectory file each PR appends to; see :mod:`repro.perf.bench`.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    CURRENT_PR,
    default_report_path,
    bench_batch_fused,
    bench_dispatch_rate,
    bench_scheduler_ops,
    bench_table2_speed,
    bench_timed_wait_throughput,
    bench_timeout_wait_throughput,
    run_benchmarks,
    run_scenario_benchmarks,
    validate_report,
    write_report,
)
from repro.perf.compare import (
    COMPARE_SCHEMA,
    DEFAULT_MAX_REGRESS_PCT,
    ReportError,
    compare_reports,
    format_compare,
    load_report,
    metric_direction,
)

__all__ = [
    "BENCH_SCHEMA",
    "CURRENT_PR",
    "default_report_path",
    "bench_dispatch_rate",
    "bench_scheduler_ops",
    "bench_table2_speed",
    "bench_timed_wait_throughput",
    "bench_timeout_wait_throughput",
    "run_benchmarks",
    "run_scenario_benchmarks",
    "validate_report",
    "write_report",
    "COMPARE_SCHEMA",
    "DEFAULT_MAX_REGRESS_PCT",
    "ReportError",
    "bench_batch_fused",
    "compare_reports",
    "format_compare",
    "load_report",
    "metric_direction",
]
