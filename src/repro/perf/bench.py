"""Kernel microbenchmarks, Table-2 S/R and the campaign perf trend.

The paper's headline quantitative claim is co-simulation *speed* (Table 2),
so every PR that touches the hot plane should leave a measured data point
behind.  This module produces that data point:

* **Kernel microbenchmarks** — timed-wait throughput, event+timeout wait
  throughput (the two hot paths of ``Simulator``), the SIM_API dispatch rate
  (block/wakeup ping-pong through the external scheduler) and raw
  ready-queue operations of the bitmap :class:`PriorityScheduler`.
* **Table-2 S/R** — the co-simulation speed measure regenerated through
  :mod:`repro.analysis.speed` at a short reference window.
* **Grid cached-vs-fresh timing** — one scenario simulated into a throwaway
  result store, then replayed from it; the report records both wall clocks
  and the speedup (the PR-4 never-recompute claim).
* **Campaign scenario timing** — every (cheap) registry scenario run through
  :func:`repro.campaign.runner.run_spec` with a
  :class:`~repro.obs.sinks.CounterSink` subscribed to the ``campaign`` and
  ``sched`` topics, exactly the aggregation route the ROADMAP prescribes for
  perf trend tracking; the run's ``timing`` section (R, S/R) and the
  counter tallies land in the report.

``run_benchmarks`` assembles the full report document;
``python -m repro bench`` writes it to ``BENCH_PR<n>.json`` so the repo
accumulates a perf trajectory over PRs (compare the files to see the trend).
Microbench numbers are host-dependent wall-clock measures — compare points
measured on the same host only.
"""

from __future__ import annotations

import datetime
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.core.scheduler import PriorityScheduler
from repro.core.simapi import SimApi
from repro.obs.sinks import CounterSink
from repro.sysc.kernel import Simulator
from repro.sysc.process import Wait, WaitEventTimeout
from repro.sysc.time import SimTime

#: Schema identifier of the report document.
BENCH_SCHEMA = "repro-bench/1"

#: The PR this checkout's trajectory file belongs to; bumped by each PR that
#: records a new data point.
CURRENT_PR = 10

#: Scenarios cheap enough to run on every ``repro bench`` invocation.
DEFAULT_SCENARIOS = (
    "quickstart",
    "sync-tour",
    "rtk-round-robin",
    "rtk-priority",
    "synthetic-tkernel",
    "synthetic-rtk",
)


def default_report_path() -> str:
    """The trajectory file this checkout's ``repro bench`` writes.

    Anchored to the source-tree root (three levels above this package), not
    the current working directory, so the committed trajectory file is
    updated no matter where the CLI is invoked from.
    """
    import os

    root = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "..")
    )
    return os.path.join(root, f"BENCH_PR{CURRENT_PR}.json")


# ----------------------------------------------------------------------
# Kernel microbenchmarks
# ----------------------------------------------------------------------
def bench_timed_wait_throughput(
    processes: int = 8, waits: int = 8000, repeats: int = 3
) -> float:
    """Timed waits per second through the kernel's bucketed timed queue.

    The workload of ``benchmarks/test_obs_bus_overhead.py``: *processes*
    generators each yielding *waits* 1 µs waits, no sinks attached.  The
    best of *repeats* runs is returned (microbenchmarks take the minimum
    wall clock, not the mean, to shed scheduler noise).
    """
    best = 0.0
    for _ in range(repeats):
        with Simulator("bench-timed") as sim:
            def body():
                request = Wait(SimTime(1000))
                for _ in range(waits):
                    yield request

            for index in range(processes):
                sim.register_thread(f"p{index}", body)
            start = time.perf_counter()
            sim.run()
            elapsed = time.perf_counter() - start
        Simulator.reset()
        best = max(best, processes * waits / elapsed)
    return best


def bench_timeout_wait_throughput(
    processes: int = 8, waits: int = 4000, repeats: int = 3
) -> float:
    """Event-wait-with-timeout waits per second (the timeout hot path)."""
    best = 0.0
    for _ in range(repeats):
        with Simulator("bench-timeout") as sim:
            def body():
                event = sim.create_event()
                request = WaitEventTimeout(event, SimTime(1000))
                for _ in range(waits):
                    yield request

            for index in range(processes):
                sim.register_thread(f"p{index}", body)
            start = time.perf_counter()
            sim.run()
            elapsed = time.perf_counter() - start
        Simulator.reset()
        best = max(best, processes * waits / elapsed)
    return best


def bench_dispatch_rate(rounds: int = 4000, repeats: int = 3) -> float:
    """SIM_API dispatches per second under a block/wakeup ping-pong.

    A high-priority task blocks; a low-priority task wakes it and yields at
    a preemption point.  Every round is two dispatches through the external
    scheduler (grant high, high blocks, grant low), all within delta cycles
    — the measure isolates dispatch machinery from timed-queue costs.
    """
    best = 0.0
    for _ in range(repeats):
        with Simulator("bench-dispatch") as sim:
            api = SimApi(sim, scheduler=PriorityScheduler(), record_gantt=False)

            def high_body():
                for _ in range(rounds):
                    yield from api.block_current()

            high = api.create_thread("high", high_body, priority=5)

            def low_body():
                for _ in range(rounds):
                    api.wakeup(high)
                    yield from api.preemption_point()

            low = api.create_thread("low", low_body, priority=20)
            api.start_thread(high)
            api.start_thread(low)
            start = time.perf_counter()
            sim.run()
            elapsed = time.perf_counter() - start
            dispatches = api.dispatch_count
        Simulator.reset()
        best = max(best, dispatches / elapsed)
    return best


class _SchedulerProbe:
    """The minimal thread stand-in the ready-pool schedulers require."""

    __slots__ = ("priority",)

    def __init__(self, priority: int):
        self.priority = priority


def bench_scheduler_ops(
    threads: int = 64, rounds: int = 2000, repeats: int = 3
) -> float:
    """Raw ready-queue operations per second of the bitmap scheduler.

    One operation is one ``add_ready`` or one ``pop_next``; the probe set
    spreads over 32 priority levels so the bitmap scan is exercised, not
    just a single deque.
    """
    probes = [_SchedulerProbe(5 + (index % 32)) for index in range(threads)]
    best = 0.0
    for _ in range(repeats):
        scheduler = PriorityScheduler()
        start = time.perf_counter()
        for _ in range(rounds):
            for probe in probes:
                scheduler.add_ready(probe)
            while scheduler.pop_next() is not None:
                pass
        elapsed = time.perf_counter() - start
        best = max(best, 2 * threads * rounds / elapsed)
    return best


# ----------------------------------------------------------------------
# Table-2 S/R
# ----------------------------------------------------------------------
def bench_table2_speed(
    simulated_ms: int = 200,
    lcd_update_periods_ms: Sequence[int] = (10,),
    gui_host_seconds_per_callback: float = 0.0,
) -> Dict[str, Any]:
    """The Table-2 co-simulation speed rows at a short reference window.

    With ``gui_host_seconds_per_callback=0`` the measure captures pure
    simulator speed (the trend we track); the paper's GUI-overhead shape is
    asserted separately in ``benchmarks/test_table2_cosim_speed.py``.
    """
    from repro.analysis.speed import measure_speed_table

    rows = measure_speed_table(
        lcd_update_periods_ms=lcd_update_periods_ms,
        simulated_duration=SimTime.ms(simulated_ms),
        gui_host_seconds_per_callback=gui_host_seconds_per_callback,
    )
    Simulator.reset()
    row_documents = [
        {
            "gui_enabled": row.gui_enabled,
            "lcd_update_period_ms": row.lcd_update_period_ms,
            "simulated_seconds": row.simulated_seconds,
            "wall_clock_seconds": row.wall_clock_seconds,
            "r_over_s": row.r_over_s,
            "s_over_r": row.s_over_r,
        }
        for row in rows
    ]
    no_gui = next(row for row in rows if not row.gui_enabled)
    return {
        "simulated_ms": simulated_ms,
        "no_gui_s_over_r": no_gui.s_over_r,
        "rows": row_documents,
    }


# ----------------------------------------------------------------------
# Campaign scenario timing (the ROADMAP's CounterSink subscription route)
# ----------------------------------------------------------------------
def run_scenario_benchmarks(
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
) -> Dict[str, Dict[str, Any]]:
    """Run each scenario once, timing it and tallying its event stream.

    Uses ``run_spec(spec, sinks=[CounterSink(...)])`` — the bus does the
    recording; the report keeps the host timing section plus O(1)-memory
    per-kind event counts (dispatches, preemptions, campaign spans).
    """
    from repro.campaign.registry import get_scenario
    from repro.campaign.runner import run_spec

    results: Dict[str, Dict[str, Any]] = {}
    for name in scenarios:
        spec = get_scenario(name)
        counter = CounterSink(topics=("campaign", "sched"))
        result = run_spec(spec, collect_events=False, sinks=[counter])
        events = counter.snapshot()
        results[name] = {
            "simulated_ms": result.metrics["simulated_ms"],
            "wall_clock_seconds": result.timing["wall_clock_seconds"],
            "r_over_s": result.timing["r_over_s"],
            "s_over_r": result.timing["s_over_r"],
            "context_switches": result.metrics["context_switches"],
            "events": events,
        }
    return results


# ----------------------------------------------------------------------
# Grid cached-vs-fresh timing
# ----------------------------------------------------------------------
def bench_cache_hit(
    scenario: str = "synthetic-rtk", repeats: int = 5
) -> Dict[str, Any]:
    """Cached-vs-fresh timing of the grid result store.

    One fresh run fills a throwaway store, then the best of *repeats* cache
    hits is measured (metrics-only replay — the mode the batch engine uses
    to skip completed runs).  The speedup is the PR-4 headline: a hit costs
    artifact verification, not simulation, so it should sit orders of
    magnitude under the fresh run and stay flat as scenarios grow.
    """
    import shutil
    import tempfile

    from repro.campaign.registry import get_scenario
    from repro.campaign.runner import run_spec
    from repro.grid.store import ResultStore

    root = tempfile.mkdtemp(prefix="repro-bench-grid-")
    try:
        store = ResultStore(root)
        spec = get_scenario(scenario)
        start = time.perf_counter()
        run_spec(spec, collect_events=False, store=store)
        fresh_seconds = time.perf_counter() - start
        hit_seconds = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_spec(spec, collect_events=False, store=store)
            hit_seconds = min(hit_seconds, time.perf_counter() - start)
            assert result.cached  # a miss here would time a simulation
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "scenario": scenario,
        "fresh_seconds": fresh_seconds,
        "hit_seconds": hit_seconds,
        "speedup": fresh_seconds / hit_seconds if hit_seconds else None,
    }


def bench_workload_plane(scale: int = 1) -> Dict[str, Any]:
    """Scenario-plane timing: composition resolution and family expansion.

    The PR-5 numbers: how many scenario compositions resolve per second
    (registry lookup + component construction, the per-member tax every
    family sweep pays before wiring) and how long a 100-member seeded
    family takes to expand into validated specs.
    """
    from repro.campaign.registry import get_scenario
    from repro.workload import FamilySpec, compose, expand_family

    spec = get_scenario("synthetic-rtk")
    rounds = max(1, 2000 // scale)
    start = time.perf_counter()
    for _ in range(rounds):
        compose(spec)
    compose_seconds = time.perf_counter() - start

    family = FamilySpec(name="bench", count=100, seed=5,
                        kernels=("tkernel", "rtkspec1", "rtkspec2"))
    start = time.perf_counter()
    members = expand_family(family)
    expand_seconds = time.perf_counter() - start
    return {
        "composes_per_s": rounds / compose_seconds if compose_seconds else None,
        "family_members": len(members),
        "family_expand_seconds": expand_seconds,
    }


def bench_batch_fused(
    members: int = 24, duration_ms: float = 5.0, repeats: int = 3
) -> Dict[str, Any]:
    """Fused vs per-process sweep throughput over a generated family.

    The PR-7 headline: a seeded mixed-kernel :class:`FamilySpec` of short
    runs — the regime where per-run fixed costs (process fan-out, IPC
    round trips, composition, collector allocation, GC scans) rival the
    simulation itself — swept once through the pre-fused pool engine
    (``fuse=False``, the per-process baseline) and once through the fused
    engine at its default worker count.  Both sweeps produce byte-identical
    deterministic documents; only the wall clock differs.  Best of
    *repeats* per engine, with an explicit collection between timings so
    neither engine pays the other's garbage backlog.
    """
    import gc

    from repro.campaign.batch import default_worker_count, run_batch
    from repro.campaign.fused import fused_worker_count
    from repro.workload.families import FamilySpec, expand_family

    family = FamilySpec(
        name="bench-batch", count=members, seed=9,
        kernels=("tkernel", "rtkspec1", "rtkspec2"),
        duration_ms=duration_ms,
    )
    specs = expand_family(family)
    # Warm imports and the composition cache outside the timed region (the
    # fork-based pool inherits the warm state, so both engines benefit).
    run_batch(specs[:2], workers=1, collect_events=False)

    per_process = fused = 0.0
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        run_batch(specs, collect_events=False, fuse=False)
        elapsed = time.perf_counter() - start
        per_process = max(per_process, members / elapsed)
        gc.collect()
        start = time.perf_counter()
        run_batch(specs, collect_events=False, fuse=True)
        elapsed = time.perf_counter() - start
        fused = max(fused, members / elapsed)
    return {
        "members": members,
        "duration_ms": duration_ms,
        "per_process_workers": default_worker_count(members),
        "fused_workers": fused_worker_count(members),
        "per_process_runs_per_s": per_process,
        "fused_runs_per_s": fused,
        "fused_speedup": fused / per_process if per_process else None,
    }


def bench_resilience(
    members: int = 24, duration_ms: float = 5.0, repeats: int = 3
) -> Dict[str, Any]:
    """Failure-envelope bookkeeping overhead on a clean fused sweep.

    The PR-8 gate: the same seeded family swept once through the plain
    fused serial engine and once through the resilient engine with the
    default :class:`~repro.resilience.envelope.ResiliencePolicy` — retry
    accounting, outcome envelopes and chaos points armed, but every run
    healthy.  Both sweeps produce byte-identical deterministic documents;
    the resilient one may only pay a small bookkeeping tax
    (``overhead_pct``, gated at 3% in the committed trajectory).
    """
    import gc

    from repro.campaign.batch import run_batch
    from repro.resilience.envelope import ResiliencePolicy
    from repro.workload.families import FamilySpec, expand_family

    family = FamilySpec(
        name="bench-resilience", count=members, seed=9,
        kernels=("tkernel", "rtkspec1", "rtkspec2"),
        duration_ms=duration_ms,
    )
    specs = expand_family(family)
    policy = ResiliencePolicy()
    # Warm imports and the composition cache outside the timed region.
    run_batch(specs[:2], workers=1, collect_events=False)
    run_batch(specs[:2], workers=1, collect_events=False, policy=policy)

    plain = resilient = 0.0
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        run_batch(specs, workers=1, collect_events=False)
        elapsed = time.perf_counter() - start
        plain = max(plain, members / elapsed)
        gc.collect()
        start = time.perf_counter()
        run_batch(specs, workers=1, collect_events=False, policy=policy)
        elapsed = time.perf_counter() - start
        resilient = max(resilient, members / elapsed)
    return {
        "members": members,
        "duration_ms": duration_ms,
        "plain_runs_per_s": plain,
        "resilient_runs_per_s": resilient,
        "overhead_pct": (plain / resilient - 1.0) * 100.0 if resilient else None,
    }


def bench_event_stream(events: int = 20000, repeats: int = 3) -> Dict[str, Any]:
    """Sched-topic publish → encode → batched-write pipeline throughput.

    The exact shape of an observed campaign run: a ``sched`` topic with one
    :class:`~repro.obs.sinks.JsonlStreamSink` attached (in-memory target),
    fed ``exec`` events through the positional ``emit_fields`` fast path.
    The measure covers the whole PR-10 pipeline — pooled event reuse, the
    specialized sched-line encoder and the batched ``writelines`` flush —
    and is reported as events per second end to end.
    """
    import io

    from repro.core.events import ExecutionContext
    from repro.obs.bus import EventBus
    from repro.obs.sinks import JsonlStreamSink

    field_names = ("thread", "dur_ns", "context", "energy_nj", "label")
    context = ExecutionContext.TASK
    best = 0.0
    for _ in range(repeats):
        bus = EventBus()
        sink = JsonlStreamSink(io.StringIO(), topics=("sched",))
        bus.subscribe(sink, topics=("sched",))
        emit = bus.topic("sched").emit_fields
        start = time.perf_counter()
        for index in range(events):
            emit("exec", 1000 * index, field_names,
                 ("t0", 500, context, 0.0, ""))
        sink.close()
        elapsed = time.perf_counter() - start
        best = max(best, events / elapsed)
    return {"events": events, "stream_events_per_s": best}


def bench_store_put(
    puts: int = 200, events_per_put: int = 50, repeats: int = 3
) -> Dict[str, Any]:
    """Result-store write throughput: complete ``put`` entries per second.

    Every put renders metrics + a *events_per_put*-line JSONL stream + the
    manifest, digests them from the bytes written (no re-read pass) and
    lands the entry with one atomic rename — the fixed cost a sweep pays
    per fresh run.  A throwaway store per repeat, best rate reported.
    """
    import shutil
    import tempfile

    from repro.grid.store import ResultStore

    events = [
        {"topic": "sched", "kind": "exec", "t_ns": 1000 * slot,
         "thread": "t0", "dur_ns": 500}
        for slot in range(events_per_put)
    ]
    best = 0.0
    for _ in range(repeats):
        root = tempfile.mkdtemp(prefix="repro-bench-store-")
        try:
            store = ResultStore(root)
            start = time.perf_counter()
            for index in range(puts):
                spec = {
                    "name": f"bench/{index:04d}", "kernel": "tkernel",
                    "workload": "generated", "seed": index,
                    "duration_ms": 40.0,
                }
                metrics = {
                    "scenario": spec["name"], "seed": index,
                    "context_switches": 10 + index,
                }
                store.put(spec, metrics, events=events)
            elapsed = time.perf_counter() - start
            best = max(best, puts / elapsed)
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "puts": puts,
        "events_per_put": events_per_put,
        "put_per_s": best,
    }


def bench_analytics(
    runs: int = 64, repeats: int = 3, queries: int = 50
) -> Dict[str, Any]:
    """Corpus-index rebuild throughput and warm-query latency (the PR-6
    analytics plane).

    A throwaway store is filled with *runs* synthetic entries through
    ``ResultStore.put`` — fabricated spec/metrics documents, no simulation —
    then the index is rebuilt (best of *repeats*, reported as entries
    indexed per second) and a representative filtered group-by query runs
    against the warm index (best mean latency of *repeats* rounds of
    *queries* queries).
    """
    import shutil
    import tempfile

    from repro.analytics.corpus import build_index, open_index
    from repro.grid.store import ResultStore

    root = tempfile.mkdtemp(prefix="repro-bench-analytics-")
    try:
        store = ResultStore(root)
        for index in range(runs):
            spec = {
                "name": f"bench/{index:04d}", "kernel": "tkernel",
                "workload": "generated", "seed": index, "duration_ms": 40.0,
                "extra": {"family": "bench", "variant": index % 4},
            }
            metrics = {
                "scenario": spec["name"], "kernel": "tkernel", "seed": index,
                "context_switches": 10 + index, "preemptions": index % 5,
                "cpu_utilization": round(0.2 + (index % 10) / 50.0, 6),
                "energy_mj": round(0.1 + index / 1000.0, 6),
            }
            events = [
                {"topic": "sched", "kind": "exec", "t_ns": 1000 * slot,
                 "thread": "t0", "dur_ns": 500}
                for slot in range(4)
            ]
            store.put(spec, metrics, events=events)

        build_rate = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            build_index(store)
            elapsed = time.perf_counter() - start
            build_rate = max(build_rate, runs / elapsed if elapsed else 0.0)

        query_seconds = float("inf")
        with open_index(store) as corpus:
            for _ in range(repeats):
                start = time.perf_counter()
                for _ in range(queries):
                    corpus.query(
                        where=("spec.kernel=tkernel",),
                        group_by=("spec.extra.family",),
                        aggregate=("count", "mean:metrics.cpu_utilization"),
                    )
                elapsed = time.perf_counter() - start
                query_seconds = min(query_seconds, elapsed / queries)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "runs": runs,
        "index_runs_per_s": build_rate,
        "warm_query_ms": query_seconds * 1e3,
    }


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------
def run_benchmarks(
    quick: bool = False,
    scenarios: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Run every benchmark family and assemble the report document.

    ``quick=True`` shrinks iteration counts for CI/schema tests; the
    resulting numbers are valid but noisy — trajectory files should be
    produced with the default settings.
    """
    from repro.campaign.registry import get_scenario

    scenario_names = list(DEFAULT_SCENARIOS if scenarios is None else scenarios)
    for name in scenario_names:
        # Fail fast on a typo'd scenario name, before the (expensive)
        # microbenchmark and Table-2 phases run.
        get_scenario(name)
    scale = 8 if quick else 1
    microbench = {
        "timed_waits_per_s": bench_timed_wait_throughput(
            waits=8000 // scale, repeats=3 if not quick else 1
        ),
        "timeout_waits_per_s": bench_timeout_wait_throughput(
            waits=4000 // scale, repeats=3 if not quick else 1
        ),
        "dispatches_per_s": bench_dispatch_rate(
            rounds=4000 // scale, repeats=3 if not quick else 1
        ),
        "scheduler_ops_per_s": bench_scheduler_ops(
            rounds=2000 // scale, repeats=3 if not quick else 1
        ),
    }
    table2 = bench_table2_speed(simulated_ms=50 if quick else 200)
    scenario_results = run_scenario_benchmarks(scenario_names)
    # The hit clocks ~0.1 ms; the minimum needs more samples than the
    # second-scale benches to shed scheduler noise at that resolution.
    grid = bench_cache_hit(repeats=1 if quick else 10)
    workload = bench_workload_plane(scale=scale)
    analytics = bench_analytics(
        runs=16 if quick else 64, repeats=1 if quick else 3,
        queries=10 if quick else 50,
    )
    events = bench_event_stream(
        events=2500 if quick else 20000, repeats=1 if quick else 3
    )
    store = bench_store_put(
        puts=40 if quick else 200, repeats=1 if quick else 3
    )
    batch = bench_batch_fused(
        members=8 if quick else 24, repeats=1 if quick else 3
    )
    resilience = bench_resilience(
        members=8 if quick else 24, repeats=1 if quick else 3
    )
    return {
        "schema": BENCH_SCHEMA,
        "pr": CURRENT_PR,
        "quick": quick,
        "created_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "microbench": microbench,
        "table2": table2,
        "grid": grid,
        "workload": workload,
        "analytics": analytics,
        "events": events,
        "store": store,
        "batch": batch,
        "resilience": resilience,
        "scenarios": scenario_results,
    }


#: Keys (and nested keys) every report document must carry.
_REQUIRED_TOP_LEVEL = (
    "schema", "pr", "quick", "created_utc", "host",
    "microbench", "table2", "grid", "workload", "analytics", "events",
    "store", "batch", "resilience", "scenarios",
)
_REQUIRED_MICROBENCH = (
    "timed_waits_per_s", "timeout_waits_per_s",
    "dispatches_per_s", "scheduler_ops_per_s",
)
_REQUIRED_SCENARIO = (
    "simulated_ms", "wall_clock_seconds", "r_over_s", "s_over_r",
    "context_switches", "events",
)


def validate_report(document: Dict[str, Any]) -> List[str]:
    """Schema-check a report document; returns a list of problems (empty=ok)."""
    problems: List[str] = []
    for key in _REQUIRED_TOP_LEVEL:
        if key not in document:
            problems.append(f"missing top-level key {key!r}")
    if document.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    microbench = document.get("microbench", {})
    for key in _REQUIRED_MICROBENCH:
        value = microbench.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(f"microbench.{key} must be a positive number, got {value!r}")
    table2 = document.get("table2", {})
    if not isinstance(table2.get("no_gui_s_over_r"), (int, float)):
        problems.append("table2.no_gui_s_over_r must be a number")
    if not table2.get("rows"):
        problems.append("table2.rows must be non-empty")
    grid = document.get("grid", {})
    for key in ("fresh_seconds", "hit_seconds", "speedup"):
        value = grid.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(f"grid.{key} must be a positive number, got {value!r}")
    workload = document.get("workload", {})
    for key in ("composes_per_s", "family_expand_seconds"):
        value = workload.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"workload.{key} must be a positive number, got {value!r}"
            )
    analytics = document.get("analytics", {})
    for key in ("runs", "index_runs_per_s", "warm_query_ms"):
        value = analytics.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"analytics.{key} must be a positive number, got {value!r}"
            )
    events = document.get("events", {})
    for key in ("events", "stream_events_per_s"):
        value = events.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"events.{key} must be a positive number, got {value!r}"
            )
    store = document.get("store", {})
    for key in ("puts", "events_per_put", "put_per_s"):
        value = store.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"store.{key} must be a positive number, got {value!r}"
            )
    batch = document.get("batch", {})
    for key in ("members", "per_process_runs_per_s", "fused_runs_per_s",
                "fused_speedup"):
        value = batch.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"batch.{key} must be a positive number, got {value!r}"
            )
    resilience = document.get("resilience", {})
    for key in ("members", "plain_runs_per_s", "resilient_runs_per_s"):
        value = resilience.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"resilience.{key} must be a positive number, got {value!r}"
            )
    if not isinstance(resilience.get("overhead_pct"), (int, float)):
        # Negative is fine (noise can favour the resilient engine); absent
        # or non-numeric is not.
        problems.append(
            "resilience.overhead_pct must be a number, got "
            f"{resilience.get('overhead_pct')!r}"
        )
    if workload.get("family_members") != 100:
        problems.append(
            "workload.family_members must be 100, got "
            f"{workload.get('family_members')!r}"
        )
    scenarios = document.get("scenarios", {})
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append("scenarios must be a non-empty mapping")
    else:
        for name, entry in scenarios.items():
            for key in _REQUIRED_SCENARIO:
                if key not in entry:
                    problems.append(f"scenarios.{name} missing {key!r}")
    return problems


def write_report(document: Dict[str, Any], path: str) -> None:
    """Write a report document as stable, human-diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(document: Dict[str, Any]) -> str:
    """A short console summary of a report document."""
    from repro.analysis.report import format_table

    micro = document["microbench"]
    lines = [
        f"bench (PR {document['pr']}, schema {document['schema']}"
        + (", quick mode)" if document.get("quick") else ")"),
        f"  timed waits      : {micro['timed_waits_per_s']:>12,.0f} /s",
        f"  timeout waits    : {micro['timeout_waits_per_s']:>12,.0f} /s",
        f"  dispatches       : {micro['dispatches_per_s']:>12,.0f} /s",
        f"  scheduler ops    : {micro['scheduler_ops_per_s']:>12,.0f} /s",
        f"  Table-2 S/R (no GUI): {document['table2']['no_gui_s_over_r']:.2f}",
    ]
    grid = document.get("grid")
    if grid:
        lines.append(
            f"  grid cache hit   : {grid['hit_seconds'] * 1e3:>9.2f} ms vs "
            f"{grid['fresh_seconds'] * 1e3:.1f} ms fresh "
            f"({grid['speedup']:.0f}x, {grid['scenario']})"
        )
    workload = document.get("workload")
    if workload:
        lines.append(
            f"  scenario compose : {workload['composes_per_s']:>12,.0f} /s   "
            f"family expand ({workload['family_members']} members): "
            f"{workload['family_expand_seconds'] * 1e3:.1f} ms"
        )
    analytics = document.get("analytics")
    if analytics:
        lines.append(
            f"  corpus index     : {analytics['index_runs_per_s']:>12,.0f} "
            f"runs/s rebuild   warm query: {analytics['warm_query_ms']:.3f} ms"
        )
    events = document.get("events")
    if events:
        lines.append(
            f"  event stream     : {events['stream_events_per_s']:>12,.0f} "
            f"events/s publish→encode→write"
        )
    store = document.get("store")
    if store:
        lines.append(
            f"  store put        : {store['put_per_s']:>12,.0f} entries/s "
            f"({store['events_per_put']} events each)"
        )
    batch = document.get("batch")
    if batch:
        lines.append(
            f"  fused sweep      : {batch['fused_runs_per_s']:>12,.0f} runs/s "
            f"vs {batch['per_process_runs_per_s']:,.0f} per-process "
            f"({batch['fused_speedup']:.2f}x, {batch['members']} members)"
        )
    resilience = document.get("resilience")
    if resilience:
        lines.append(
            f"  resilience tax   : {resilience['overhead_pct']:>11.2f} % "
            f"({resilience['resilient_runs_per_s']:,.0f} vs "
            f"{resilience['plain_runs_per_s']:,.0f} runs/s, "
            f"{resilience['members']} members)"
        )
    rows = [
        (
            name,
            f"{entry['simulated_ms']:g}",
            f"{entry['wall_clock_seconds']:.3f}",
            f"{entry['s_over_r']:.2f}",
            entry["context_switches"],
        )
        for name, entry in sorted(document["scenarios"].items())
    ]
    lines.append(
        format_table(
            ["scenario", "S [ms]", "R [s]", "S/R", "ctx sw"],
            rows,
            title="Campaign scenario timing",
        )
    )
    return "\n".join(lines)
