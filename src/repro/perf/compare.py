"""Enforceable perf-delta gate between two ``repro-bench/1`` reports.

``repro bench compare OLD.json NEW.json`` aligns two trajectory files
metric-by-metric and renders a delta table; with ``--max-regress`` it
becomes a CI gate that exits non-zero when any *directional* metric moved
the wrong way by more than the threshold.

Direction is inferred from the metric's leaf name — the report schema is
deliberately suffix-consistent: ``*_per_s`` / ``*speedup`` / ``s_over_r``
are throughput-like (higher is better), ``*_seconds`` / ``*_ms`` /
``r_over_s`` are latency-like (lower is better).  Configuration echoes
(simulated horizons, member counts, PR numbers, host facts) carry no
direction and are reported as ``info`` — they can never trip the gate.

Exit codes are the gate contract: 0 = no regression beyond threshold,
1 = at least one regression, 2 = a report could not be read/parsed
(:class:`ReportError`, one-line message).
"""

from __future__ import annotations

import json
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.campaign.metrics import flatten_numeric
from repro.perf.bench import BENCH_SCHEMA

#: Schema identifier of the comparison document ``--json`` emits.
COMPARE_SCHEMA = "repro-bench-compare/1"

#: Default regression tolerance (percent) — generous enough that ordinary
#: run-to-run benchmark noise passes, tight enough that a real structural
#: slowdown (2x anywhere) cannot hide.
DEFAULT_MAX_REGRESS_PCT = 10.0

#: Leaf names that end in a directional suffix but are configuration, not
#: measurement (a horizon of 200 ms is not "worse" than 150 ms).  The bare
#: ``speedup`` leaf (``grid.speedup`` = fresh/hit of the same report) is
#: neutral too: both factors are gated directionally on their own, and the
#: ratio "regresses" across reports precisely when the fresh path improves
#: — a prefixed ratio such as ``batch.fused_speedup`` stays directional via
#: the suffix rule.
NEUTRAL_LEAVES = frozenset({
    "simulated_ms", "duration_ms", "lcd_update_period_ms",
    "simulated_seconds", "speedup",
})

#: The ``--preset code-metrics`` ignore list: strips everything that is a
#: host fact, a configuration echo or a workload-shape tally rather than a
#: code-performance measurement, so two trajectory files compare on the
#: rows the code is responsible for.  Spelled as ``fnmatch`` globs over
#: flattened metric keys, exactly like ``--ignore``.
CODE_METRICS_IGNORE = (
    "pr", "quick", "host.*",
    "*.members", "*.runs", "*.puts", "*.events", "*.events_per_put",
    "*.queries", "*.family_members",
    "*.per_process_workers", "*.fused_workers",
    "scenarios.*.context_switches", "scenarios.*.events.*",
    "table2.rows.*",
)

#: Named ignore presets the CLI accepts via ``--preset``.
IGNORE_PRESETS: Dict[str, Sequence[str]] = {
    "code-metrics": CODE_METRICS_IGNORE,
}


class ReportError(ValueError):
    """A report file that cannot serve as a comparison side."""


def load_report(path: str) -> Dict[str, Any]:
    """Read *path* as a ``repro-bench/1`` document or raise ReportError."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ReportError(f"cannot read bench report {path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise ReportError(f"corrupt bench report {path!r}: {error}") from None
    if not isinstance(document, dict) or document.get("schema") != BENCH_SCHEMA:
        raise ReportError(
            f"{path!r} is not a bench report "
            f"(expected schema {BENCH_SCHEMA!r}, "
            f"got {document.get('schema') if isinstance(document, dict) else type(document).__name__!r})"
        )
    return document


def metric_direction(key: str) -> Optional[str]:
    """``"higher"``/``"lower"``-is-better for flattened metric *key*, or None.

    None means the metric is informational: compared and displayed, never
    gated.  Direction comes from the leaf name's suffix so new benchmark
    sections inherit gating for free as long as they follow the report's
    naming convention.
    """
    leaf = key.rsplit(".", 1)[-1]
    if leaf in NEUTRAL_LEAVES or leaf == "pr":
        return None
    if leaf.endswith("r_over_s"):
        return "lower"
    if leaf.endswith("s_over_r"):
        return "higher"
    if leaf.endswith("_per_s") or leaf.endswith("speedup"):
        return "higher"
    if leaf.endswith("_seconds") or leaf.endswith("_ms"):
        return "lower"
    return None


def _is_ignored(key: str, ignore: Sequence[str]) -> bool:
    return any(fnmatchcase(key, pattern) for pattern in ignore)


def resolve_ignore(
    ignore: Iterable[str] = (), presets: Iterable[str] = (),
) -> List[str]:
    """Expand ``--ignore`` globs plus ``--preset`` names into one list.

    Unknown preset names raise :class:`ReportError` (the CLI's one-line
    exit-code-2 path), naming the valid presets.
    """
    patterns = list(ignore)
    for name in presets:
        preset = IGNORE_PRESETS.get(name)
        if preset is None:
            raise ReportError(
                f"unknown ignore preset {name!r} "
                f"(valid: {', '.join(sorted(IGNORE_PRESETS))})"
            )
        patterns.extend(preset)
    return patterns


def compare_reports(
    old: Dict[str, Any],
    new: Dict[str, Any],
    max_regress_pct: float = DEFAULT_MAX_REGRESS_PCT,
    ignore: Sequence[str] = (),
) -> Dict[str, Any]:
    """Align two report documents metric-by-metric.

    Returns the comparison document: one row per flattened numeric key in
    either report, each carrying old/new values, the percentage delta, the
    inferred direction and a status — ``ok`` (within threshold),
    ``improved`` (moved the right way by more than the threshold),
    ``regression`` (moved the wrong way by more than the threshold),
    ``info`` (no direction), ``added``/``removed`` (one-sided).  The
    verdict is ``"regression"`` iff any row regressed.

    *ignore* is a list of ``fnmatch`` globs over flattened metric keys
    (``host.*``, ``scenarios.*.events.*``); matching keys are dropped from
    both sides before alignment, so they appear in no row and can neither
    regress nor count as added/removed.  The comparison document records
    the patterns and how many keys they removed.
    """
    old_flat = flatten_numeric(old)
    new_flat = flatten_numeric(new)
    keys = set(old_flat) | set(new_flat)
    ignored = 0
    if ignore:
        kept = {key for key in keys if not _is_ignored(key, ignore)}
        ignored = len(keys) - len(kept)
        keys = kept
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for key in sorted(keys):
        old_value = old_flat.get(key)
        new_value = new_flat.get(key)
        row: Dict[str, Any] = {
            "metric": key,
            "old": old_value,
            "new": new_value,
            "direction": metric_direction(key),
            "delta_pct": None,
        }
        if old_value is None:
            row["status"] = "added"
        elif new_value is None:
            row["status"] = "removed"
        else:
            if old_value != 0:
                row["delta_pct"] = (new_value - old_value) / abs(old_value) * 100.0
            direction = row["direction"]
            if direction is None or row["delta_pct"] is None:
                row["status"] = "info"
            else:
                # A "regression" is movement against the metric's grain
                # beyond the tolerance; equal movement the other way is an
                # improvement worth surfacing, not just "ok".
                signed = row["delta_pct"] if direction == "higher" else -row["delta_pct"]
                if signed < -max_regress_pct:
                    row["status"] = "regression"
                    regressions.append(key)
                elif signed > max_regress_pct:
                    row["status"] = "improved"
                else:
                    row["status"] = "ok"
        rows.append(row)
    return {
        "schema": COMPARE_SCHEMA,
        "old_pr": old.get("pr"),
        "new_pr": new.get("pr"),
        "old_quick": bool(old.get("quick")),
        "new_quick": bool(new.get("quick")),
        "max_regress_pct": max_regress_pct,
        "ignore": list(ignore),
        "ignored_keys": ignored,
        "rows": rows,
        "regressions": regressions,
        "verdict": "regression" if regressions else "ok",
    }


def _format_value(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, int):
        return f"{value:,}"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:g}"


def format_compare(document: Dict[str, Any]) -> str:
    """Render a comparison document as the CLI's delta table + verdict."""
    from repro.analysis.report import format_table

    rows = []
    for row in document["rows"]:
        delta = row["delta_pct"]
        rows.append((
            row["metric"],
            _format_value(row["old"]),
            _format_value(row["new"]),
            "" if delta is None else f"{delta:+.1f}%",
            row["status"],
        ))
    table = format_table(
        ["metric", "old", "new", "delta", "status"],
        rows,
        title=(
            f"bench compare: PR {document['old_pr']} -> PR {document['new_pr']}"
            f" (max regress {document['max_regress_pct']:g}%)"
        ),
    )
    if document["regressions"]:
        verdict = (
            f"REGRESSION: {len(document['regressions'])} metric(s) beyond "
            f"{document['max_regress_pct']:g}%: "
            + ", ".join(document["regressions"])
        )
    else:
        verdict = (
            f"ok: no directional metric regressed beyond "
            f"{document['max_regress_pct']:g}%"
        )
    quick_sides = [
        side for side, flag in (
            ("old", document["old_quick"]), ("new", document["new_quick"])
        ) if flag
    ]
    if quick_sides:
        verdict += (
            f"  [note: {' and '.join(quick_sides)} report(s) are quick-mode "
            "— numbers are noisy]"
        )
    if document.get("ignore"):
        verdict += (
            f"  [{document.get('ignored_keys', 0)} key(s) ignored via "
            f"{len(document['ignore'])} glob(s)]"
        )
    return table + "\n" + verdict
