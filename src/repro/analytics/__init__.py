"""``repro.analytics`` — the trace analytics plane.

Three layers over a warm result store:

* :mod:`repro.analytics.corpus` — a stdlib-``sqlite3`` columnar index of
  every verified store entry (spec knobs × metrics), rebuilt as a pure
  function of the store; ``repro index build|status`` and ``repro query``.
* :mod:`repro.analytics.reports` — schedulability audits, deadline-miss and
  latency distributions and per-family regression tables, all from stored
  artifacts with zero simulation; ``repro report``.
* :mod:`repro.analytics.telemetry` — span-based pipeline phase timing over
  the ``telemetry`` obs topic, written to sidecar ``telemetry.jsonl`` files
  and summarized by ``repro batch/shard --telemetry``.  Telemetry is wall
  clock and never enters spec hashes, stored artifacts or golden streams.
"""

from repro.analytics.corpus import (
    AnalyticsError,
    CORPUS_SCHEMA,
    CorpusIndex,
    build_index,
    corpus_fingerprint,
    default_index_path,
    index_status,
    open_index,
    parse_filter,
)
from repro.analytics.reports import (
    deadline_report,
    family_report,
    latency_report,
    rm_bound,
    schedulability_audit,
)
from repro.analytics.telemetry import (
    TELEMETRY_SCHEMA,
    TelemetryRecorder,
    format_telemetry_summary,
    load_telemetry,
    summarize_spans,
)

__all__ = [
    "AnalyticsError",
    "CORPUS_SCHEMA",
    "CorpusIndex",
    "TELEMETRY_SCHEMA",
    "TelemetryRecorder",
    "build_index",
    "corpus_fingerprint",
    "deadline_report",
    "default_index_path",
    "family_report",
    "format_telemetry_summary",
    "index_status",
    "latency_report",
    "load_telemetry",
    "open_index",
    "parse_filter",
    "rm_bound",
    "schedulability_audit",
    "summarize_spans",
]
