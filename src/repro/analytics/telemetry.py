"""Pipeline telemetry: span-based phase timing for sweeps.

Where does a 10^5-run sweep's wall time go — composing specs, building
scenarios, simulating, hashing artifacts into the store, merging shards?
This module answers that with *spans*: one record per pipeline phase
(``compose``, ``build``, ``run``, ``store``, ``lookup``, ``replay``,
``plan``, ``merge``) carrying the phase name, its wall-clock duration in
host seconds and free-form metadata (scenario name, run index, shard).

Spans travel over the observability bus's ``telemetry`` topic (publishers
guard with ``topic.enabled``, so an un-instrumented sweep pays one branch
per phase) and collect in a :class:`TelemetryRecorder` — itself an ordinary
bus sink — which summarizes per phase and writes a sidecar
``telemetry.jsonl``.

Contract — telemetry is wall-clock data and therefore **never
deterministic**: it must not enter spec hashes, stored result-store
artifacts, aggregate documents or golden streams.  It lives only in
sidecar files beside the outputs and in ``--telemetry`` CLI summaries.
``tests/analytics/test_telemetry.py`` pins this: a run with telemetry
enabled produces byte-identical stored artifacts to one without.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, IO, Iterable, Iterator, List, Mapping, Optional, Union

from repro.obs.bus import Event, canonical_json
from repro.obs.sinks import Sink, _open_target

#: Schema identifier written into every telemetry sidecar line.
TELEMETRY_SCHEMA = "repro-telemetry/1"


class TelemetryRecorder(Sink):
    """Collects pipeline phase spans; a bus sink on the ``telemetry`` topic.

    Spans arrive two ways: directly via :meth:`record`/:meth:`span` (the
    campaign/grid layers hold the recorder), or as bus events when a
    simulator-side publisher emits on its ``telemetry`` topic while the
    recorder is subscribed.  Both end up as the same plain span dicts.
    """

    topics = ("telemetry",)
    retains_events = False

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []

    # -- collection --------------------------------------------------------
    def handle(self, event: Event) -> None:
        fields = {
            key: value for key, value in event.fields.items()
            if not key.startswith("_")
        }
        seconds = fields.pop("seconds", 0.0)
        self.record(event.kind, seconds, **fields)

    def record(self, phase: str, seconds: float, **meta: Any) -> None:
        """Append one span: *phase* took *seconds* of host wall clock."""
        span: Dict[str, Any] = {"phase": phase, "seconds": float(seconds)}
        for key in sorted(meta):
            span[key] = meta[key]
        self.spans.append(span)

    @contextmanager
    def span(self, phase: str, **meta: Any) -> Iterator[None]:
        """Time a ``with`` block as one *phase* span (recorded even on error)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(phase, time.perf_counter() - start, **meta)

    def adopt(self, spans: Iterable[Mapping[str, Any]], **extra_meta: Any) -> None:
        """Fold spans recorded elsewhere (e.g. a worker process) into this
        recorder, tagging each with *extra_meta* (e.g. the run index)."""
        for span in spans:
            payload = dict(span)
            phase = payload.pop("phase", "?")
            seconds = payload.pop("seconds", 0.0)
            payload.update(extra_meta)
            self.record(phase, seconds, **payload)

    # -- summarization -----------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-phase rollup: span count, total and mean seconds, sorted."""
        rollup: Dict[str, Dict[str, Any]] = {}
        for span in self.spans:
            phase = rollup.setdefault(
                span["phase"], {"spans": 0, "total_seconds": 0.0}
            )
            phase["spans"] += 1
            phase["total_seconds"] += span["seconds"]
        for phase in rollup.values():
            phase["mean_seconds"] = phase["total_seconds"] / phase["spans"]
        return {name: rollup[name] for name in sorted(rollup)}

    # -- sidecar i/o -------------------------------------------------------
    def write_jsonl(self, target: "Union[str, IO[str]]") -> int:
        """Write the spans as a JSONL sidecar; returns lines written.

        The first line is a schema header; each span follows as one
        canonical-JSON line.  The sidecar sits *beside* outputs, never
        inside a store entry or aggregate document.
        """
        stream, owns_stream = _open_target(target)
        lines = 0
        try:
            stream.write(canonical_json({"schema": TELEMETRY_SCHEMA}) + "\n")
            lines += 1
            for span in self.spans:
                stream.write(canonical_json(span) + "\n")
                lines += 1
            stream.flush()
        finally:
            if owns_stream:
                stream.close()
        return lines

    def __len__(self) -> int:
        return len(self.spans)


def load_telemetry(path: str) -> List[Dict[str, Any]]:
    """Read a ``telemetry.jsonl`` sidecar back into a list of span dicts."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            document = json.loads(line)
            if document.get("schema") == TELEMETRY_SCHEMA:
                continue
            spans.append(document)
    return spans


def format_telemetry_summary(
    summary: Mapping[str, Mapping[str, Any]],
    title: str = "pipeline telemetry",
) -> str:
    """Render a :meth:`TelemetryRecorder.summary` rollup as a text table."""
    from repro.analysis.report import format_table

    rows = [
        (
            phase,
            stats["spans"],
            f"{stats['total_seconds']:.4f}",
            f"{stats['mean_seconds'] * 1000:.3f}",
        )
        for phase, stats in summary.items()
    ]
    return format_table(
        ["phase", "spans", "total_s", "mean_ms"], rows, title=title
    )


def summarize_spans(
    spans: Iterable[Mapping[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Per-phase rollup of loose span dicts (e.g. loaded from a sidecar)."""
    recorder = TelemetryRecorder()
    recorder.adopt(spans)
    return recorder.summary()
