"""Audit reports over a warm corpus: answers without re-simulating.

Every report here is a pure read over the corpus index and the stored
artifacts it points at — the acceptance bar (pinned by
``tests/analytics/test_reports.py`` with a poisoned ``build_scenario``) is
that producing any report from a warm store executes **zero simulations**.

Reports:

* :func:`schedulability_audit` — per run: requested utilization of the
  generated periodic task set (Σ Cᵢ/Tᵢ), the Liu–Layland rate-monotonic
  bound n·(2^(1/n)−1), the measured CPU utilization, and a verdict.
* :func:`deadline_report` — per run: deadline misses reconstructed from the
  stored ``sched`` stream (periodic tasks: job *k* of task (C, T) arrives
  at k·T, must accumulate C of execution by (k+1)·T), plus response-time
  percentiles from a :class:`~repro.obs.sinks.StreamingHistogram`.
* :func:`latency_report` — per run and aggregate: execution-slice duration
  percentiles streamed through a :class:`~repro.obs.sinks.HistogramSink`
  over the replayed stored stream.
* :func:`family_report` — per family: run counts and metric means, with
  optional delta columns against a baseline family (regression tables).

The deadline reconstruction is a *heuristic for generated periodic tasks*:
it assumes the declared jobs arrive strictly periodically from t = 0 and
that a task's execution slices serve its jobs in order.  Jittered, sporadic
and bursty tasks have no static deadline, so only ``law == "periodic"``
tasks are audited; runs without a generated task set are skipped.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analytics.corpus import AnalyticsError, CorpusIndex
from repro.grid.store import ResultStore
from repro.obs.replay import read_events_jsonl
from repro.obs.sinks import HistogramSink, StreamingHistogram


# ----------------------------------------------------------------------
# Shared row access
# ----------------------------------------------------------------------
def _select_rows(
    index: CorpusIndex, columns: Sequence[str], where: Sequence[str],
) -> List[Dict[str, Any]]:
    """Index rows as documents, only the columns that exist in the corpus."""
    present = [c for c in columns if c in index.columns]
    if "key" not in present:
        present = ["key"] + present
    headers, rows = index.query(select=present, where=where)
    return index.documents(headers, rows)


def _tasks_of(row: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """The generated task set of an index row, or ``[]`` when absent."""
    raw = row.get("spec.extra.tasks")
    if not isinstance(raw, str) or not raw:
        return []
    try:
        tasks = json.loads(raw)
    except json.JSONDecodeError:
        return []
    return tasks if isinstance(tasks, list) else []


def _periodic_tasks(tasks: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    return [
        dict(task) for task in tasks
        if task.get("law") == "periodic"
        and isinstance(task.get("period_ms"), (int, float))
        and isinstance(task.get("execution_ms"), (int, float))
    ]


# ----------------------------------------------------------------------
# Schedulability audit
# ----------------------------------------------------------------------
def rm_bound(task_count: int) -> float:
    """Liu–Layland rate-monotonic utilization bound for *task_count* tasks."""
    if task_count <= 0:
        return 0.0
    return task_count * (2.0 ** (1.0 / task_count) - 1.0)


def schedulability_audit(
    index: CorpusIndex, where: Sequence[str] = (),
) -> List[Dict[str, Any]]:
    """Per-run schedulability audit rows, sorted by run key."""
    rows = _select_rows(
        index,
        ["key", "spec.name", "spec.kernel", "spec.extra.tasks",
         "metrics.cpu_utilization", "metrics.preemptions"],
        where,
    )
    audit: List[Dict[str, Any]] = []
    for row in rows:
        periodic = _periodic_tasks(_tasks_of(row))
        requested = sum(
            task["execution_ms"] / task["period_ms"] for task in periodic
        )
        bound = rm_bound(len(periodic))
        if not periodic:
            verdict = "-"
        elif requested > 1.0:
            verdict = "overload"
        elif requested <= bound:
            verdict = "rm-bound-ok"
        else:
            verdict = "check"
        audit.append({
            "key": row["key"],
            "name": row.get("spec.name", ""),
            "kernel": row.get("spec.kernel", ""),
            "periodic_tasks": len(periodic),
            "requested_utilization": round(requested, 6),
            "rm_bound": round(bound, 6),
            "measured_utilization": row.get("metrics.cpu_utilization"),
            "verdict": verdict,
        })
    return audit


# ----------------------------------------------------------------------
# Deadline reconstruction
# ----------------------------------------------------------------------
def _exec_slices_by_thread(
    store: ResultStore, key: str,
) -> Dict[str, List[Tuple[int, int]]]:
    """Per-thread ``(start_ns, dur_ns)`` execution slices of a stored run."""
    entry = store.lookup_key(key)
    if entry is None:
        raise AnalyticsError(
            f"store entry {key!r} vanished or failed verification"
        )
    slices: Dict[str, List[Tuple[int, int]]] = {}
    for event in read_events_jsonl(entry.events_path):
        if event.topic == "sched" and event.kind == "exec":
            slices.setdefault(event.fields["thread"], []).append(
                (event.t_ns, event.fields["dur_ns"])
            )
    return slices


def _job_completions_ns(
    slices: Sequence[Tuple[int, int]], execution_ns: float, jobs: int,
) -> List[Optional[float]]:
    """Completion instants of jobs 0..jobs-1, interpolated inside slices.

    Job *k* completes the moment the thread's cumulative execution crosses
    ``(k + 1) * execution_ns``; a job whose budget is never reached within
    the stored horizon completes ``None``.
    """
    completions: List[Optional[float]] = []
    cumulative = 0.0
    slice_index = 0
    for job in range(jobs):
        needed = (job + 1) * execution_ns
        while slice_index < len(slices):
            start, duration = slices[slice_index]
            if cumulative + duration >= needed - 1e-9:
                within = needed - cumulative
                completions.append(start + within)
                break
            cumulative += duration
            slice_index += 1
        else:
            completions.append(None)
            continue
    return completions


def deadline_report(
    index: CorpusIndex, store: ResultStore, where: Sequence[str] = (),
) -> List[Dict[str, Any]]:
    """Per-run deadline-miss rows for generated periodic task sets."""
    rows = _select_rows(
        index, ["key", "spec.name", "spec.kernel", "spec.extra.tasks"], where,
    )
    report: List[Dict[str, Any]] = []
    for row in rows:
        periodic = _periodic_tasks(_tasks_of(row))
        if not periodic:
            continue
        slices = _exec_slices_by_thread(store, row["key"])
        jobs_total = 0
        misses = 0
        response = StreamingHistogram()
        for task in periodic:
            period_ns = task["period_ms"] * 1e6
            execution_ns = task["execution_ms"] * 1e6
            jobs = int(task.get("jobs", 1))
            completions = _job_completions_ns(
                slices.get(task["name"], ()), execution_ns, jobs,
            )
            for job, completion in enumerate(completions):
                jobs_total += 1
                arrival = job * period_ns
                deadline = arrival + period_ns
                if completion is None or completion > deadline + 1e-9:
                    misses += 1
                if completion is not None and completion >= arrival:
                    response.add(completion - arrival)
        summary = response.snapshot()
        report.append({
            "key": row["key"],
            "name": row.get("spec.name", ""),
            "kernel": row.get("spec.kernel", ""),
            "jobs": jobs_total,
            "misses": misses,
            "miss_ratio": round(misses / jobs_total, 6) if jobs_total else 0.0,
            "response_p50_ms": round(summary["p50"] / 1e6, 6),
            "response_p99_ms": round(summary["p99"] / 1e6, 6),
        })
    return report


# ----------------------------------------------------------------------
# Latency distributions
# ----------------------------------------------------------------------
def latency_report(
    index: CorpusIndex, store: ResultStore, where: Sequence[str] = (),
) -> Dict[str, Any]:
    """Execution-slice duration percentiles per run plus an aggregate.

    Each stored ``sched`` stream replays through a
    :class:`~repro.obs.sinks.HistogramSink`; the per-run histograms merge
    into one corpus-wide aggregate — O(1) memory however large the sweep.
    """
    rows = _select_rows(index, ["key", "spec.name", "spec.kernel"], where)
    runs: List[Dict[str, Any]] = []
    aggregate = StreamingHistogram()
    for row in rows:
        entry = store.lookup_key(row["key"])
        if entry is None:
            raise AnalyticsError(
                f"store entry {row['key']!r} vanished or failed verification"
            )
        sink = HistogramSink()
        for event in read_events_jsonl(entry.events_path):
            sink.handle(event)
        snapshot = sink.snapshot()
        aggregate.merge(sink.histogram)
        runs.append({
            "key": row["key"],
            "name": row.get("spec.name", ""),
            "kernel": row.get("spec.kernel", ""),
            "slices": int(snapshot["count"]),
            "p50_us": round(snapshot["p50"] / 1e3, 3),
            "p90_us": round(snapshot["p90"] / 1e3, 3),
            "p99_us": round(snapshot["p99"] / 1e3, 3),
            "max_us": round(snapshot["max"] / 1e3, 3),
        })
    overall = aggregate.snapshot()
    return {
        "runs": runs,
        "aggregate": {
            "slices": int(overall["count"]),
            "p50_us": round(overall["p50"] / 1e3, 3),
            "p90_us": round(overall["p90"] / 1e3, 3),
            "p99_us": round(overall["p99"] / 1e3, 3),
            "max_us": round(overall["max"] / 1e3, 3),
        },
    }


# ----------------------------------------------------------------------
# Per-family regression tables
# ----------------------------------------------------------------------
#: Metrics a family table summarizes by default.
FAMILY_METRICS = (
    "metrics.context_switches", "metrics.preemptions",
    "metrics.cpu_utilization", "metrics.energy_mj",
)


def family_report(
    index: CorpusIndex,
    where: Sequence[str] = (),
    metrics: Sequence[str] = FAMILY_METRICS,
    baseline: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Per-family run counts and metric means, sorted by family name.

    Runs carrying a generated-family tag group under ``spec.extra.family``;
    anything else groups under its workload name.  With *baseline* set, each
    row gains ``delta.<metric>`` columns against the named family's means —
    the regression-table view.
    """
    group_column = (
        "spec.extra.family" if "spec.extra.family" in index.columns
        else "spec.workload"
    )
    wanted = [m for m in metrics if index.columns and m in index.columns]
    headers, rows = index.query(
        group_by=[group_column],
        aggregate=["count"] + [f"mean:{m}" for m in wanted],
        where=where,
    )
    documents: List[Dict[str, Any]] = []
    for row in rows:
        document: Dict[str, Any] = {"family": row[0], "runs": row[1]}
        for metric, value in zip(wanted, row[2:]):
            document[f"mean.{metric}"] = (
                round(value, 6) if isinstance(value, float) else value
            )
        documents.append(document)
    documents = [d for d in documents if d["family"] is not None]
    if baseline is not None:
        base = next(
            (d for d in documents if d["family"] == baseline), None
        )
        if base is None:
            known = ", ".join(str(d["family"]) for d in documents)
            raise AnalyticsError(
                f"baseline family {baseline!r} not in corpus (known: {known})"
            )
        for document in documents:
            for metric in wanted:
                mean_key = f"mean.{metric}"
                reference = base.get(mean_key)
                value = document.get(mean_key)
                if isinstance(reference, (int, float)) and isinstance(
                    value, (int, float)
                ):
                    document[f"delta.{metric}"] = round(value - reference, 6)
    return documents
