"""The corpus index: a queryable columnar view of a result store.

A warm :class:`~repro.grid.store.ResultStore` holds one directory per run —
perfect for byte-identical replay, useless for asking "mean preemptions by
kernel where utilization > 0.5".  This module builds a stdlib-``sqlite3``
index over the store: **one row per verified entry**, one column per spec
knob (the canonical spec JSON flattened by
:func:`repro.workload.knobs.flatten_knobs`) and per metric (the metrics
document flattened the same way), keyed by the entry's spec hash.

The index is a *pure function of the store*:

* rows come only from digest-verified entries (``ResultStore.iter_results``)
  in ascending key order,
* column order is sorted,
* nothing host- or time-dependent is stored — in particular the manifest's
  ``created_utc`` wall clock never enters the index, so the corpora of a
  serial batch and a sharded merge of the same family index identically,
* booleans are stored as SQLite integers (0/1); structured knobs (task
  lists, priorities) are canonical-JSON strings.

Rebuilding twice therefore yields byte-identical query output, and
:func:`corpus_fingerprint` — a digest over the store's code fingerprint and
every entry's recorded artifact digests — lets :func:`index_status` detect
staleness without re-reading artifacts.  The index file lives *inside* the
store root as ``.corpus.sqlite``: dot-prefixed names are invisible to the
store's own entry walk, and the index travels with the corpus it describes.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.grid.store import (
    STORE_SCHEMA,
    GridError,
    ResultStore,
    _file_sha256,
)
from repro.obs.bus import canonical_json
from repro.workload.knobs import flatten_knobs

#: Schema identifier of the corpus index; bump on incompatible changes.
CORPUS_SCHEMA = "repro-analytics-corpus/1"

#: Index filename inside the store root (dot-prefixed: not a store entry).
INDEX_FILENAME = ".corpus.sqlite"


class AnalyticsError(GridError):
    """An analytics-layer failure worth a one-line CLI error."""


def default_index_path(store: ResultStore) -> str:
    """Where the corpus index of *store* lives."""
    return os.path.join(store.root, INDEX_FILENAME)


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def corpus_fingerprint(store: ResultStore) -> str:
    """Digest of the store's indexable content, cheap to recompute.

    Hashes the code fingerprint plus every current-version entry's key and
    recorded artifact digests (manifest reads only — no artifact re-hash),
    in sorted key order.  Any entry added, removed, replaced or produced by
    other code changes the fingerprint, which is how :func:`index_status`
    detects a stale index.
    """
    hasher = hashlib.sha256()
    hasher.update(store.fingerprint.encode("utf-8"))
    for key, entry_dir in store._entry_dirs():
        try:
            with open(os.path.join(entry_dir, "manifest.json"),
                      "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(manifest, dict):
            continue
        if manifest.get("spec_hash") != key:
            continue
        if manifest.get("fingerprint") != store.fingerprint:
            continue
        hasher.update(
            f"{key}:{manifest.get('metrics_sha256', '')}"
            f":{manifest.get('events_sha256', '')}".encode("utf-8")
        )
        hasher.update(b"\0")
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
def _quote(identifier: str) -> str:
    """Quote a column identifier for SQLite (names contain dots)."""
    return '"' + identifier.replace('"', '""') + '"'


def build_index(
    store: ResultStore, path: Optional[str] = None,
) -> Dict[str, Any]:
    """(Re)build the corpus index of *store*; returns build statistics.

    The index is written to ``<path>.tmp`` and atomically renamed into
    place, so a concurrent reader never sees a half-built index.

    The store is walked exactly once: each entry's manifest is read once
    (feeding both the corpus fingerprint and verification), the metrics
    artifact is read once (hashed and parsed from the same bytes), and the
    event stream is hashed once.  Rows still come only from fully
    digest-verified current-fingerprint entries, in ascending key order —
    the same view :meth:`ResultStore.iter_results` serves, without its
    second manifest read or separate artifact passes.
    """
    path = path or default_index_path(store)

    hasher = hashlib.sha256()
    hasher.update(store.fingerprint.encode("utf-8"))
    rows: List[Dict[str, Any]] = []
    columns: List[str] = ["key"]
    seen = {"key"}
    for key, entry_dir in store._entry_dirs():
        try:
            with open(os.path.join(entry_dir, "manifest.json"),
                      "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(manifest, dict):
            continue
        if manifest.get("spec_hash") != key:
            continue
        if manifest.get("fingerprint") != store.fingerprint:
            continue
        # Fingerprint covers every current-fingerprint entry, verified or
        # not — identical to :func:`corpus_fingerprint`'s view.
        hasher.update(
            f"{key}:{manifest.get('metrics_sha256', '')}"
            f":{manifest.get('events_sha256', '')}".encode("utf-8")
        )
        hasher.update(b"\0")
        if manifest.get("schema") != STORE_SCHEMA:
            continue
        try:
            with open(os.path.join(entry_dir, "metrics.json"), "rb") as handle:
                metrics_blob = handle.read()
            events_sha256 = _file_sha256(os.path.join(entry_dir, "events.jsonl"))
        except OSError:
            continue
        if hashlib.sha256(metrics_blob).hexdigest() != manifest.get("metrics_sha256"):
            continue
        if events_sha256 != manifest.get("events_sha256"):
            continue
        document = json.loads(metrics_blob)
        row: Dict[str, Any] = {"key": key}
        for knob, value in flatten_knobs(document.get("spec", {})).items():
            row[f"spec.{knob}"] = value
        for metric, value in flatten_knobs(document.get("metrics", {})).items():
            row[f"metrics.{metric}"] = value
        for column in row:
            if column not in seen:
                seen.add(column)
                columns.append(column)
        rows.append(row)
    fingerprint = hasher.hexdigest()
    columns = ["key"] + sorted(column for column in columns if column != "key")

    staging = path + ".tmp"
    if os.path.exists(staging):
        os.remove(staging)
    connection = sqlite3.connect(staging)
    try:
        # The staging file only becomes the index via the os.replace below,
        # so crash durability buys nothing here — a torn build is just a
        # stray .tmp the next build removes.  Skipping the rollback journal
        # and fsyncs roughly halves the rebuild cost.
        connection.execute("PRAGMA journal_mode=OFF")
        connection.execute("PRAGMA synchronous=OFF")
        connection.execute(
            "CREATE TABLE runs (" + ", ".join(
                _quote(column) + (" PRIMARY KEY" if column == "key" else "")
                for column in columns
            ) + ")"
        )
        connection.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        placeholder = ", ".join("?" for _ in columns)
        insert = (
            "INSERT INTO runs (" + ", ".join(_quote(c) for c in columns)
            + f") VALUES ({placeholder})"
        )
        connection.executemany(
            insert,
            ([_to_sqlite(row.get(column)) for column in columns]
             for row in rows),
        )
        connection.executemany(
            "INSERT INTO meta (key, value) VALUES (?, ?)",
            [
                ("schema", CORPUS_SCHEMA),
                ("store_fingerprint", store.fingerprint),
                ("corpus_fingerprint", fingerprint),
                ("runs", str(len(rows))),
                ("columns", canonical_json({"columns": columns})),
            ],
        )
        connection.commit()
    finally:
        connection.close()
    os.replace(staging, path)
    return {
        "path": path,
        "runs": len(rows),
        "columns": len(columns),
        "corpus_fingerprint": fingerprint,
    }


def _to_sqlite(value: Any) -> Any:
    """Map a flattened knob/metric value to its SQLite cell value."""
    if isinstance(value, bool):
        return int(value)
    return value


# ----------------------------------------------------------------------
# Opening & status
# ----------------------------------------------------------------------
def _read_meta(path: str) -> Dict[str, str]:
    connection = sqlite3.connect(path)
    try:
        return dict(connection.execute("SELECT key, value FROM meta"))
    except sqlite3.Error as error:
        raise AnalyticsError(
            f"corpus index {path!r} is unreadable: {error}"
        ) from None
    finally:
        connection.close()


def index_status(
    store: ResultStore, path: Optional[str] = None,
) -> Dict[str, Any]:
    """Health of the corpus index: presence, size, freshness vs. the store."""
    path = path or default_index_path(store)
    current = corpus_fingerprint(store)
    if not os.path.exists(path):
        return {
            "path": path,
            "present": False,
            "fresh": False,
            "runs": 0,
            "columns": 0,
            "corpus_fingerprint": current,
        }
    meta = _read_meta(path)
    recorded = meta.get("corpus_fingerprint", "")
    columns = json.loads(meta.get("columns", '{"columns": []}'))["columns"]
    return {
        "path": path,
        "present": True,
        "fresh": (
            recorded == current and meta.get("schema") == CORPUS_SCHEMA
        ),
        "schema": meta.get("schema", ""),
        "runs": int(meta.get("runs", "0")),
        "columns": len(columns),
        "recorded_fingerprint": recorded,
        "corpus_fingerprint": current,
    }


class CorpusIndex:
    """An open, queryable corpus index."""

    def __init__(self, path: str, connection: sqlite3.Connection,
                 columns: List[str], rebuilt: bool):
        self.path = path
        self.connection = connection
        self.columns = columns
        #: Whether :func:`open_index` rebuilt the index to open it.
        self.rebuilt = rebuilt

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "CorpusIndex":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- column resolution -------------------------------------------------
    def resolve_column(self, name: str) -> str:
        """Resolve a user-facing column name: exact, then ``spec.``/``metrics.``."""
        for candidate in (name, f"spec.{name}", f"metrics.{name}"):
            if candidate in self.columns:
                return candidate
        near = [c for c in self.columns if name in c][:8]
        hint = f" (similar: {', '.join(near)})" if near else ""
        raise AnalyticsError(f"no corpus column {name!r}{hint}")

    # -- querying ----------------------------------------------------------
    def query(
        self,
        select: Optional[Sequence[str]] = None,
        where: Sequence[str] = (),
        group_by: Sequence[str] = (),
        aggregate: Sequence[str] = (),
        limit: Optional[int] = None,
    ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        """Run one query; returns ``(headers, rows)`` deterministically.

        *where* entries are ``column OP value`` filters (see
        :func:`parse_filter`); *aggregate* entries are ``count`` or
        ``fn:column`` with ``fn`` in sum/mean/min/max.  Row mode orders by
        ``key``; grouped mode orders by the group columns — either way the
        output bytes depend only on the corpus content.
        """
        clauses: List[str] = []
        parameters: List[Any] = []
        for filter_text in where:
            column, op, value = parse_filter(filter_text)
            clauses.append(f"{_quote(self.resolve_column(column))} {op} ?")
            parameters.append(_to_sqlite(value))
        where_sql = (" WHERE " + " AND ".join(clauses)) if clauses else ""

        if group_by or aggregate:
            groups = [self.resolve_column(g) for g in group_by]
            headers = list(groups)
            selects = [_quote(g) for g in groups]
            for spec_text in (aggregate or ["count"]):
                alias, sql = self._aggregate_sql(spec_text)
                headers.append(alias)
                selects.append(sql)
            sql = f"SELECT {', '.join(selects)} FROM runs{where_sql}"
            if groups:
                sql += " GROUP BY " + ", ".join(_quote(g) for g in groups)
                sql += " ORDER BY " + ", ".join(_quote(g) for g in groups)
        else:
            if select:
                headers = [self.resolve_column(c) for c in select]
            else:
                headers = [c for c in DEFAULT_SELECT if c in self.columns]
                if not headers:
                    headers = self.columns[: 8]
            sql = (
                f"SELECT {', '.join(_quote(h) for h in headers)} "
                f"FROM runs{where_sql} ORDER BY \"key\""
            )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        rows = self.connection.execute(sql, parameters).fetchall()
        return headers, rows

    def _aggregate_sql(self, text: str) -> Tuple[str, str]:
        if text == "count":
            return "count", "COUNT(*)"
        function, _, column = text.partition(":")
        sql_fn = {"sum": "SUM", "mean": "AVG", "min": "MIN", "max": "MAX"}.get(
            function
        )
        if sql_fn is None or not column:
            raise AnalyticsError(
                f"bad aggregate {text!r} (want count or sum/mean/min/max:column)"
            )
        resolved = self.resolve_column(column)
        return f"{function}:{resolved}", f"{sql_fn}({_quote(resolved)})"

    def documents(
        self, headers: Sequence[str], rows: Sequence[Sequence[Any]],
    ) -> List[Dict[str, Any]]:
        """Rows as JSON-safe documents (the ``--json`` output form)."""
        return [dict(zip(headers, row)) for row in rows]


#: Row-mode columns shown when the user selects nothing explicitly.
DEFAULT_SELECT = (
    "key", "spec.name", "spec.kernel", "spec.workload", "spec.seed",
    "metrics.context_switches", "metrics.preemptions",
    "metrics.cpu_utilization", "metrics.energy_mj",
)

#: Comparison operators a filter may use, longest first (parse order).
FILTER_OPS = ("==", "!=", "<=", ">=", "=", "<", ">")


def parse_filter(text: str) -> Tuple[str, str, Any]:
    """Parse a ``column OP value`` filter string.

    Values are coerced like CLI matrix values (bool/int/float/str); ``=``
    and ``==`` both mean SQL equality.
    """
    from repro.campaign.spec import coerce_value

    for op in FILTER_OPS:
        if op in text:
            column, _, value_text = text.partition(op)
            column = column.strip()
            value_text = value_text.strip()
            if not column or value_text == "":
                break
            sql_op = "=" if op in ("=", "==") else op
            return column, sql_op, coerce_value(value_text)
    raise AnalyticsError(
        f"bad filter {text!r} (want column OP value, OP one of {FILTER_OPS})"
    )


def open_index(
    store: ResultStore,
    path: Optional[str] = None,
    auto_build: bool = True,
) -> CorpusIndex:
    """Open the corpus index of *store*, rebuilding when missing or stale.

    With ``auto_build=False`` a missing or stale index raises
    :class:`AnalyticsError` instead (the ``repro query --no-build`` path).
    """
    path = path or default_index_path(store)
    status = index_status(store, path)
    rebuilt = False
    if not status["fresh"]:
        if not auto_build:
            state = "missing" if not status["present"] else "stale"
            raise AnalyticsError(
                f"corpus index {path!r} is {state}; run 'repro index build'"
            )
        build_index(store, path)
        rebuilt = True
    meta = _read_meta(path)
    columns = json.loads(meta["columns"])["columns"]
    connection = sqlite3.connect(path)
    return CorpusIndex(path, connection, columns, rebuilt)
