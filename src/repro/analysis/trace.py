"""The execution time/energy trace of Fig. 6.

"In this widget, task dispatching, interrupt handling, and preemption can be
observed.  Also, different contexts of execution are assigned different
patterns to display the execution time/energy of a BFM access, basic block,
or OS service."

:class:`ExecutionTraceReport` extracts exactly those observables from the
SIM_API Gantt chart over a chosen window: per-thread slices broken down per
execution context, the dispatch/preempt/interrupt markers, and a rendered
text chart using the per-context patterns of :mod:`repro.core.gantt`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.core.events import ExecutionContext
from repro.core.gantt import GanttChart
from repro.core.simapi import SimApi
from repro.sysc.time import SimTime


class ExecutionTraceReport:
    """Fig. 6: execution time/energy trace over a simulation window.

    *source* may be a :class:`SimApi` (classic — reads its Gantt sink), a
    :class:`GanttChart` directly, or any observability-bus sink exposing
    ``events()`` (e.g. :class:`repro.obs.sinks.RingBufferSink` subscribed to
    the ``sched`` topic), whose events are rebuilt into a chart.
    """

    def __init__(self, source: "SimApi | GanttChart | object",
                 start: "SimTime | int" = 0,
                 stop: "SimTime | int | None" = None):
        self.api: "SimApi | None" = None
        if isinstance(source, SimApi):
            self.api = source
            self.gantt: GanttChart = source.gantt
        elif isinstance(source, GanttChart):
            self.gantt = source
        elif hasattr(source, "events"):
            # Ring sinks expose events() as a method, list sinks as a list.
            events = source.events
            self.gantt = GanttChart.from_events(events() if callable(events) else events)
        else:
            raise TypeError(
                "source must be a SimApi, a GanttChart or a sink with events()"
            )
        self.start = SimTime.coerce(start)
        self.stop = SimTime.coerce(stop) if stop is not None else self.gantt.end_time()

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    def _window_segments(self, thread: Optional[str] = None):
        for segment in self.gantt.segments:
            if segment.end <= self.start or segment.start >= self.stop:
                continue
            if thread is not None and segment.thread != thread:
                continue
            yield segment

    def threads(self) -> List[str]:
        """Threads that executed inside the window."""
        names: List[str] = []
        for segment in self._window_segments():
            if segment.thread not in names:
                names.append(segment.thread)
        return names

    def time_by_context(self, thread: str) -> Dict[ExecutionContext, float]:
        """Execution milliseconds of *thread* per execution context."""
        breakdown: Dict[ExecutionContext, float] = {}
        for segment in self._window_segments(thread):
            breakdown[segment.context] = (
                breakdown.get(segment.context, 0.0) + segment.duration.to_ms()
            )
        return breakdown

    def energy_by_context(self, thread: str) -> Dict[ExecutionContext, float]:
        """Energy (nJ) of *thread* per execution context."""
        breakdown: Dict[ExecutionContext, float] = {}
        for segment in self._window_segments(thread):
            breakdown[segment.context] = breakdown.get(segment.context, 0.0) + segment.energy_nj
        return breakdown

    def marker_counts(self, kind: str) -> Dict[str, int]:
        """Count of one marker kind (dispatch/preempt/interrupted) per thread."""
        counts: Dict[str, int] = {}
        for marker in self.gantt.markers:
            if marker.kind != kind:
                continue
            if not self.start <= marker.time < self.stop:
                continue
            counts[marker.thread] = counts.get(marker.thread, 0) + 1
        return counts

    def observed_dispatches(self) -> int:
        """Number of dispatches inside the window."""
        return sum(self.marker_counts("dispatch").values())

    def observed_preemptions(self) -> int:
        """Number of preemptions inside the window."""
        return sum(self.marker_counts("preempt").values()) + \
            sum(self.marker_counts("delayed_preempt").values())

    def observed_interrupts(self) -> int:
        """Number of interrupt suspensions inside the window."""
        return sum(self.marker_counts("interrupted").values())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary_rows(self) -> List[List[object]]:
        """One row per (thread, context) with time and energy."""
        rows: List[List[object]] = []
        for thread in self.threads():
            time_breakdown = self.time_by_context(thread)
            energy_breakdown = self.energy_by_context(thread)
            for context, milliseconds in sorted(
                time_breakdown.items(), key=lambda item: -item[1]
            ):
                rows.append([
                    thread,
                    context.value,
                    f"{milliseconds:.3f}",
                    f"{energy_breakdown.get(context, 0.0) / 1e6:.4f}",
                ])
        return rows

    def render(self, columns: int = 72) -> str:
        """The Fig. 6 style output: chart plus per-context table plus counters."""
        chart = self.gantt.render(self.start, self.stop, columns=columns,
                                  threads=self.threads())
        table = format_table(
            ["thread", "context", "time [ms]", "energy [mJ]"],
            self.summary_rows(),
            title="execution time/energy per context",
        )
        counters = (
            f"dispatches={self.observed_dispatches()}  "
            f"preemptions={self.observed_preemptions()}  "
            f"interrupt suspensions={self.observed_interrupts()}"
        )
        return "\n".join([chart, "", table, "", counters])
