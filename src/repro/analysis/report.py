"""Small text-table formatting helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render *rows* as a fixed-width text table.

    Every row must have at most ``len(headers)`` cells — extra cells would
    otherwise be dropped silently, hiding data from the report, so they raise
    :class:`ValueError` instead.  Rows shorter than the header are padded
    with empty cells (a missing metric renders as blank, which is what the
    CLI ``compare`` output wants for one-sided keys).
    """
    string_rows: List[List[str]] = []
    for number, row in enumerate(rows):
        cells = [str(cell) for cell in row]
        if len(cells) > len(headers):
            raise ValueError(
                f"row {number} has {len(cells)} cells but the table only has "
                f"{len(headers)} columns: {cells!r}"
            )
        cells.extend("" for _ in range(len(headers) - len(cells)))
        string_rows.append(cells)
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_percentage(fraction: float) -> str:
    """Render a fraction as a percentage with one decimal."""
    return f"{fraction * 100:.1f}%"


def format_event_counts(counter, title: str = "observability event counts") -> str:
    """Render per-``(topic, kind)`` tallies from an observability counter.

    *counter* is a :class:`repro.obs.sinks.CounterSink` (or any object with
    a ``counts`` mapping keyed by ``(topic, kind)``).  Rows are sorted by
    topic then kind so the table is deterministic.
    """
    rows = [
        (topic, kind, count)
        for (topic, kind), count in sorted(counter.counts.items())
    ]
    return format_table(["topic", "kind", "events"], rows, title=title)
