"""Small text-table formatting helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render *rows* as a fixed-width text table."""
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_percentage(fraction: float) -> str:
    """Render a fraction as a percentage with one decimal."""
    return f"{fraction * 100:.1f}%"
