"""Measurement and reporting: the paper's evaluation artifacts.

* :mod:`repro.analysis.speed` — the co-simulation speed measure of Table 2,
* :mod:`repro.analysis.trace` — the execution time/energy trace of Fig. 6,
* :mod:`repro.analysis.distribution` — the consumed time/energy distribution
  and battery lifespan of Fig. 7,
* :mod:`repro.analysis.report` — shared table-formatting helpers.
"""

from repro.analysis.speed import CoSimSpeedMeasurement, SpeedRow, measure_speed_table
from repro.analysis.trace import ExecutionTraceReport
from repro.analysis.distribution import TimeEnergyDistribution
from repro.analysis.report import format_table

__all__ = [
    "CoSimSpeedMeasurement",
    "SpeedRow",
    "measure_speed_table",
    "ExecutionTraceReport",
    "TimeEnergyDistribution",
    "format_table",
]
