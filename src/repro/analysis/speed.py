"""The co-simulation speed measure of Table 2.

"To measure the co-simulation speed of the overall framework including the
overhead of GUI, the proposed modeling constructs, and SIM_API dynamics, we
simulated the overall system for 1 s as a reference unit time S and measured
the wall clock time R, considering different BFM access rates driving the GUI
widgets ... Simulation data showed us that co-simulation speed (R/S) was
lagging by 5X (S/R = 0.2) from real time without GUI overhead and 10X
(S/R = 0.1) with GUI overhead and maximum BFM access driving a GUI widget
every 10 ms."

The absolute R/S depends on the host (the paper used a Pentium III 1.4 GHz);
the *shape* we reproduce is: GUI callbacks roughly halve the speed at the
highest BFM access rate, and slowing the BFM access rate narrows the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.app.framework import CoSimulationFramework, FrameworkConfig
from repro.app.videogame import VideoGameConfig
from repro.sysc.time import SimTime


@dataclass(frozen=True)
class SpeedRow:
    """One Table 2 row: one (GUI, BFM access period) configuration."""

    gui_enabled: bool
    lcd_update_period_ms: int
    simulated_seconds: float
    wall_clock_seconds: float
    gui_callbacks: int
    bfm_accesses: int

    @property
    def r_over_s(self) -> float:
        """Wall-clock seconds per simulated second (the paper's R/S)."""
        if self.simulated_seconds == 0:
            return float("inf")
        return self.wall_clock_seconds / self.simulated_seconds

    @property
    def s_over_r(self) -> float:
        """Simulated seconds per wall-clock second (the paper's S/R)."""
        if self.wall_clock_seconds == 0:
            return float("inf")
        return self.simulated_seconds / self.wall_clock_seconds


class CoSimSpeedMeasurement:
    """Runs the video-game co-simulation under one configuration."""

    def __init__(
        self,
        gui_enabled: bool,
        lcd_update_period_ms: int,
        simulated_duration: "SimTime | int" = SimTime.sec(1),
        gui_host_seconds_per_callback: float = 0.00004,
    ):
        self.gui_enabled = gui_enabled
        self.lcd_update_period_ms = lcd_update_period_ms
        self.simulated_duration = SimTime.coerce(simulated_duration)
        self.gui_host_seconds_per_callback = gui_host_seconds_per_callback

    def run(self) -> SpeedRow:
        """Build a framework, run it, and return the Table 2 row."""
        duration_ms = int(self.simulated_duration.to_ms())
        config = FrameworkConfig(
            simulated_duration=self.simulated_duration,
            gui_enabled=self.gui_enabled,
            gui_host_seconds_per_callback=self.gui_host_seconds_per_callback,
            game=VideoGameConfig(lcd_update_period_ms=self.lcd_update_period_ms),
            key_script=FrameworkConfig.default_key_script(duration_ms),
        )
        framework = CoSimulationFramework(config)
        results = framework.run()
        return SpeedRow(
            gui_enabled=self.gui_enabled,
            lcd_update_period_ms=self.lcd_update_period_ms,
            simulated_seconds=results["simulated_seconds"],
            wall_clock_seconds=results["wall_clock_seconds"],
            gui_callbacks=results["gui_callbacks"],
            bfm_accesses=results["bfm"]["bus_accesses"],
        )


def measure_speed_table(
    lcd_update_periods_ms: Sequence[int] = (10, 20, 50, 100),
    simulated_duration: "SimTime | int" = SimTime.sec(1),
    gui_host_seconds_per_callback: float = 0.00004,
    include_no_gui: bool = True,
) -> List[SpeedRow]:
    """Regenerate Table 2: a speed row per (GUI, BFM access period) setting."""
    rows: List[SpeedRow] = []
    if include_no_gui:
        rows.append(
            CoSimSpeedMeasurement(
                gui_enabled=False,
                lcd_update_period_ms=min(lcd_update_periods_ms),
                simulated_duration=simulated_duration,
                gui_host_seconds_per_callback=gui_host_seconds_per_callback,
            ).run()
        )
    for period in lcd_update_periods_ms:
        rows.append(
            CoSimSpeedMeasurement(
                gui_enabled=True,
                lcd_update_period_ms=period,
                simulated_duration=simulated_duration,
                gui_host_seconds_per_callback=gui_host_seconds_per_callback,
            ).run()
        )
    return rows


def render_speed_table(rows: Sequence[SpeedRow]) -> str:
    """Render Table 2 as text."""
    return format_table(
        ["GUI", "LCD period [ms]", "S [s]", "R [s]", "R/S", "S/R", "callbacks", "BFM accesses"],
        [
            (
                "yes" if row.gui_enabled else "no",
                row.lcd_update_period_ms,
                f"{row.simulated_seconds:.2f}",
                f"{row.wall_clock_seconds:.3f}",
                f"{row.r_over_s:.3f}",
                f"{row.s_over_r:.2f}",
                row.gui_callbacks,
                row.bfm_accesses,
            )
            for row in rows
        ],
        title="Table 2 — co-simulation speed measure",
    )
