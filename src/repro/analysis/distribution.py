"""The consumed time/energy distribution of Fig. 7.

"In this widget, a battery of 10-watt-hour was assumed and at run time the
consumed execution time (CET) and energy (CEE) were accumulated and
distributed over registered T-THREADs and the battery's status bar was
updated.  From such a display, designers can figure out the maximum duration
of the battery's lifespan for a given application, and the tasks that consume
much time or energy."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import format_table, format_percentage
from repro.app.widgets import DEFAULT_BATTERY_WATT_HOURS, BatteryWidget
from repro.core.simapi import SimApi


class TimeEnergyDistribution:
    """Fig. 7: CET/CEE distribution over registered T-THREADs plus battery."""

    def __init__(self, api: SimApi, battery_watt_hours: float = DEFAULT_BATTERY_WATT_HOURS):
        self.api = api
        self.battery = BatteryWidget(api, battery_watt_hours)

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def per_thread(self) -> List[Dict[str, object]]:
        """One entry per registered T-THREAD with CET, CEE and shares."""
        stats = self.api.energy_statistics()
        total_cet = sum(entry["cet_ms"] for entry in stats.values()) or 1.0
        total_cee = sum(entry["cee_mj"] for entry in stats.values()) or 1.0
        rows = []
        for name, entry in stats.items():
            rows.append({
                "thread": name,
                "cet_ms": entry["cet_ms"],
                "cee_mj": entry["cee_mj"],
                "cet_share": entry["cet_ms"] / total_cet,
                "cee_share": entry["cee_mj"] / total_cee,
                "activations": int(entry["activations"]),
            })
        rows.sort(key=lambda row: -row["cee_mj"])
        return rows

    def totals(self) -> Dict[str, float]:
        """Aggregate CET/CEE, idle time and total platform energy."""
        stats = self.api.energy_statistics()
        return {
            "total_cet_ms": sum(entry["cet_ms"] for entry in stats.values()),
            "total_cee_mj": sum(entry["cee_mj"] for entry in stats.values()),
            "idle_ms": self.api.cpu_idle_time().to_ms(),
            "platform_energy_mj": self.api.total_consumed_energy_mj(include_idle=True),
            "simulated_ms": self.api.simulator.now.to_ms(),
        }

    def dominant_consumers(self, count: int = 3) -> List[str]:
        """The *count* threads consuming the most energy (for HW/SW hints)."""
        return [row["thread"] for row in self.per_thread()[:count]]

    def battery_lifespan_hours(self) -> Optional[float]:
        """Projected 10 Wh battery lifespan at the observed drain rate."""
        self.battery.update()
        return self.battery.projected_lifespan_hours()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Fig. 7 style text output: distribution table plus battery bar."""
        rows = [
            (
                row["thread"],
                f"{row['cet_ms']:.2f}",
                format_percentage(row["cet_share"]),
                f"{row['cee_mj']:.4f}",
                format_percentage(row["cee_share"]),
                row["activations"],
            )
            for row in self.per_thread()
        ]
        table = format_table(
            ["T-THREAD", "CET [ms]", "CET share", "CEE [mJ]", "CEE share", "activations"],
            rows,
            title="consumed time/energy distribution",
        )
        totals = self.totals()
        self.battery.update()
        footer = (
            f"total CET {totals['total_cet_ms']:.2f} ms over "
            f"{totals['simulated_ms']:.0f} ms simulated "
            f"(idle {totals['idle_ms']:.2f} ms)\n"
            f"{self.battery.render()}"
        )
        return f"{table}\n{footer}"
