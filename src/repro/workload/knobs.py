"""Knob flattening: one flat, sorted view of a nested spec document.

The analytics corpus index stores one row per run with one column per spec
knob, so the nested ``ScenarioSpec.to_dict()`` document (top-level fields
plus the free-form ``extra`` mapping, which itself nests task lists and
platform hints) has to flatten into stable scalar columns.

:func:`flatten_knobs` walks the document depth-first:

* mappings recurse with dotted keys (``extra.family``, ``extra.member``),
* scalar leaves — numbers, booleans, strings — are kept as-is,
* any other leaf (lists such as ``priorities`` or ``extra.tasks``, or
  ``None``) is rendered to its canonical-JSON string, so structurally
  identical values compare equal as column values and nothing is lost —
  report code can parse the JSON back when it needs the structure.

The output is sorted by key, so two equal documents always flatten to the
same ordered column set — the basis of the corpus index's byte-identical
query output.
"""

from __future__ import annotations

import json
from collections.abc import Mapping as _AbcMapping
from typing import Any, Dict, Mapping, Union

#: A flattened knob value: what a corpus-index column can hold.
KnobValue = Union[bool, int, float, str]

_SCALARS = (bool, int, float, str)


def flatten_knobs(
    document: Mapping[str, Any], prefix: str = "",
) -> Dict[str, KnobValue]:
    """Flatten a nested JSON-safe document into sorted dotted-key scalars."""
    flat: Dict[str, KnobValue] = {}
    for key, value in document.items():
        if key.__class__ is not str and not isinstance(key, str):
            raise TypeError(
                f"knob keys must be strings, got {type(key).__name__}: {key!r}"
            )
        dotted = f"{prefix}{key}"
        # Exact-class checks first: JSON-decoded documents only ever hold
        # dict/str/int/float/bool leaves, so the ABC isinstance fallbacks
        # run solely for exotic caller-supplied mappings and subclasses.
        cls = value.__class__
        if cls in _SCALARS:
            flat[dotted] = value
        elif cls is dict or isinstance(value, _AbcMapping):
            flat.update(flatten_knobs(value, prefix=f"{dotted}."))
        elif isinstance(value, _SCALARS):
            flat[dotted] = value
        else:
            # Lists, None, anything structured: canonical JSON string.
            flat[dotted] = canonical_json_value(value)
    return {key: flat[key] for key in sorted(flat)}


def canonical_json_value(value: Any) -> str:
    """The canonical-JSON string of any JSON-safe value (not just objects)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))
