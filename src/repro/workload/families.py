"""Seeded workload-family generation: one small spec, unbounded scenarios.

A :class:`FamilySpec` is a compact generator document — count, seed, kernel
pool, task-count/utilization/period ranges, arrival-law and service-mix
rates.  :func:`expand_family` expands it into ``count`` *distinct but
reproducible* :class:`~repro.campaign.spec.ScenarioSpec` members: member
*i*'s task graph is sampled by a ``random.Random`` seeded from
``derive_seed(family.seed, i, family.name)`` — no wall clock, no global
RNG — so the same family document yields byte-identical members (and
therefore identical ``spec_hash`` cache keys) on every host, forever.

Members are ordinary ``generated``-workload specs: they flow through the
result store, the sharded sweep executor and ``repro bench`` unchanged.
A family sweep is just::

    python -m repro batch --family family.json --cache sweep_cache --out out/
    python -m repro shard run --family family.json --shards 8 --index 3 ...

where ``family.json`` holds the ``to_dict`` form of a :class:`FamilySpec`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.campaign.spec import KERNELS, ScenarioSpec, SpecError, derive_seed
from repro.workload.tasks import ARRIVAL_LAWS, SERVICE_CALLS

#: Schema identifier of a family document on disk.
FAMILY_SCHEMA = "repro-workload-family/1"


@dataclass(frozen=True)
class FamilySpec:
    """A seeded generator of ``generated``-workload scenario specs."""

    #: Family name; members are named ``<name>/<index>``.
    name: str
    #: How many members the family expands to.
    count: int = 100
    #: Base seed all member sampling derives from.
    seed: int = 0
    #: Kernel models members are drawn from.
    kernels: Tuple[str, ...] = ("tkernel",)
    #: Simulated duration of every member, in milliseconds.
    duration_ms: float = 40.0
    #: System tick of every member, in milliseconds.
    tick_ms: float = 1.0
    #: Inclusive range of tasks per member.
    task_count: Tuple[int, int] = (2, 5)
    #: Inclusive range of jobs per task.
    jobs: Tuple[int, int] = (2, 4)
    #: Base periods sampled for each task, in milliseconds.
    period_choices_ms: Tuple[float, ...] = (5.0, 10.0, 20.0, 40.0)
    #: Per-task utilization range (execution = period × utilization).
    utilization: Tuple[float, float] = (0.05, 0.35)
    #: Arrival laws members sample from.
    laws: Tuple[str, ...] = ARRIVAL_LAWS
    #: Probability a (tkernel) task carries a service-call mix.
    service_rate: float = 0.5
    #: Probability a (tkernel) member gets a cyclic handler pattern.
    cyclic_rate: float = 0.25
    #: Probability a (tkernel) member runs on the ``rtc`` platform.
    rtc_rate: float = 0.0

    # ------------------------------------------------------------------
    # Validation & serialization
    # ------------------------------------------------------------------
    def validate(self) -> "FamilySpec":
        # Type checks come first — a mistyped family document must surface
        # as a one-line SpecError, never as a TypeError from a comparison.
        def is_number(value) -> bool:
            return isinstance(value, (int, float)) and not isinstance(value, bool)

        problems: List[str] = []
        if not isinstance(self.name, str) or not self.name:
            problems.append("name must be a non-empty string")
        if not isinstance(self.count, int) or isinstance(self.count, bool) \
                or self.count < 1:
            problems.append("count must be a positive integer")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            problems.append("seed must be an integer")
        if not isinstance(self.kernels, (list, tuple)) or not self.kernels:
            problems.append("kernels must be a non-empty list")
        else:
            for kernel in self.kernels:
                if kernel not in KERNELS:
                    problems.append(
                        f"unknown kernel {kernel!r} (choose from {KERNELS})"
                    )
        for field_name in ("duration_ms", "tick_ms"):
            value = getattr(self, field_name)
            if not is_number(value) or value <= 0:
                problems.append(f"{field_name} must be a positive number")
        for range_name in ("task_count", "jobs"):
            value = getattr(self, range_name)
            if not (
                isinstance(value, (list, tuple)) and len(value) == 2
                and all(isinstance(v, int) and not isinstance(v, bool)
                        for v in value)
                and 1 <= value[0] <= value[1]
            ):
                problems.append(
                    f"{range_name} must be an int range [lo, hi], 1 <= lo <= hi"
                )
        if not (
            isinstance(self.period_choices_ms, (list, tuple))
            and self.period_choices_ms
            and all(is_number(p) and p > 0 for p in self.period_choices_ms)
        ):
            problems.append("period_choices_ms must be positive and non-empty")
        if not (
            isinstance(self.utilization, (list, tuple))
            and len(self.utilization) == 2
            and all(is_number(u) for u in self.utilization)
            and 0 < self.utilization[0] <= self.utilization[1] < 1
        ):
            problems.append("utilization must be a range inside (0, 1)")
        if not isinstance(self.laws, (list, tuple)) or not self.laws:
            problems.append("laws must be a non-empty list")
        else:
            for law in self.laws:
                if law not in ARRIVAL_LAWS:
                    problems.append(
                        f"unknown arrival law {law!r} "
                        f"(choose from {ARRIVAL_LAWS})"
                    )
        for rate_name in ("service_rate", "cyclic_rate", "rtc_rate"):
            rate = getattr(self, rate_name)
            if not is_number(rate) or not 0.0 <= rate <= 1.0:
                problems.append(f"{rate_name} must be a number in [0, 1]")
        if problems:
            raise SpecError(f"invalid family {self.name!r}: " + "; ".join(problems))
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FAMILY_SCHEMA,
            "name": self.name,
            "count": self.count,
            "seed": self.seed,
            "kernels": list(self.kernels),
            "duration_ms": self.duration_ms,
            "tick_ms": self.tick_ms,
            "task_count": list(self.task_count),
            "jobs": list(self.jobs),
            "period_choices_ms": list(self.period_choices_ms),
            "utilization": list(self.utilization),
            "laws": list(self.laws),
            "service_rate": self.service_rate,
            "cyclic_rate": self.cyclic_rate,
            "rtc_rate": self.rtc_rate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FamilySpec":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"family must be a JSON object, got {type(data).__name__}"
            )
        payload = dict(data)
        schema = payload.pop("schema", FAMILY_SCHEMA)
        if schema != FAMILY_SCHEMA:
            raise SpecError(
                f"family schema is {schema!r}, expected {FAMILY_SCHEMA!r}"
            )
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"unknown family fields: {sorted(unknown)}")
        if "name" not in payload:
            raise SpecError("family needs a 'name'")
        for tuple_field in ("kernels", "task_count", "jobs",
                            "period_choices_ms", "utilization", "laws"):
            if tuple_field in payload:
                value = payload[tuple_field]
                if not isinstance(value, (list, tuple)):
                    raise SpecError(
                        f"family field {tuple_field!r} must be a list"
                    )
                payload[tuple_field] = tuple(value)
        return cls(**payload).validate()


def load_family_file(path: str) -> FamilySpec:
    """Load and validate one :class:`FamilySpec` JSON document from *path*."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise SpecError(f"cannot read family file {path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise SpecError(
            f"family file {path!r} is not valid JSON: {error}"
        ) from None
    try:
        return FamilySpec.from_dict(document)
    except SpecError as error:
        raise SpecError(f"family file {path!r}: {error}") from None


# ----------------------------------------------------------------------
# Expansion
# ----------------------------------------------------------------------
def family_member(family: FamilySpec, index: int) -> ScenarioSpec:
    """Member *index* of *family*: a distinct, reproducible scenario spec.

    All sampling happens on a member-local ``random.Random`` seeded from
    the family seed, the member index and the family name, so any member
    can be regenerated in isolation without expanding the whole family.
    """
    if not 0 <= index < family.count:
        raise SpecError(
            f"family {family.name!r} has members [0, {family.count - 1}], "
            f"got index {index}"
        )
    rng = random.Random(derive_seed(family.seed, index, family.name))
    kernel = rng.choice(family.kernels)
    task_count = rng.randint(*family.task_count)
    on_tkernel = kernel == "tkernel"

    tasks: List[Dict[str, Any]] = []
    for task_index in range(task_count):
        law = rng.choice(family.laws)
        period = rng.choice(family.period_choices_ms)
        utilization = rng.uniform(*family.utilization)
        task: Dict[str, Any] = {
            "name": f"t{task_index}",
            "priority": 5 + rng.randrange(0, 40),
            "execution_ms": max(0.1, round(period * utilization, 3)),
            "law": law,
            "jobs": rng.randint(*family.jobs),
        }
        if law in ("periodic", "jittered"):
            task["period_ms"] = period
        if law == "jittered":
            task["jitter_ms"] = round(period * 0.25, 3)
        elif law == "sporadic":
            task["min_gap_ms"] = round(period * 0.5, 3)
            task["max_gap_ms"] = round(period * 1.5, 3)
        elif law == "bursty":
            task["burst_size"] = rng.randint(2, 4)
            task["intra_gap_ms"] = round(max(period * 0.1, 0.5), 3)
            task["burst_gap_ms"] = round(period * 2.0, 3)
        if on_tkernel and rng.random() < family.service_rate:
            count = rng.randint(1, len(SERVICE_CALLS))
            task["services"] = rng.sample(SERVICE_CALLS, count)
        tasks.append(task)

    extra: Dict[str, Any] = {"family": family.name, "member": index, "tasks": tasks}
    if on_tkernel and rng.random() < family.cyclic_rate:
        extra["cyclics"] = [{
            "name": "cyc0",
            "period_ms": int(rng.choice((5, 10, 20))),
            "execution_us": rng.randrange(50, 250),
        }]
    if on_tkernel and rng.random() < family.rtc_rate:
        extra["platform"] = "rtc"

    return ScenarioSpec(
        name=f"{family.name}/{index:04d}",
        kernel=kernel,
        workload="generated",
        duration_ms=family.duration_ms,
        task_count=task_count,
        tick_ms=family.tick_ms,
        seed=derive_seed(family.seed, index, f"{family.name}:member"),
        extra=extra,
    ).validate()


def expand_family(family: FamilySpec) -> List[ScenarioSpec]:
    """Every member of *family*, in index order."""
    family.validate()
    return [family_member(family, index) for index in range(family.count)]
