"""The composable scenario plane: Platform × KernelProfile × Workload × Probes.

Scenario construction used to be nine hand-wired monolithic builder
functions; this module factors every scenario into four orthogonal,
declaratively-describable parts:

* :class:`Platform` — the BFM hardware set underneath the kernel: a bare
  simulator, a BFM real-time clock driving the kernel tick, or the full
  i8051 BFM (bus, intc, rtc, peripherals, budgets) of the Fig. 5 framework.
* :class:`KernelProfile` — which kernel model runs (RTK-Spec TRON, I or II)
  plus its configuration knobs (tick, time slice).
* :class:`Workload` — what the software does: declarative task sets with
  arrival laws, compute bursts, service-call mixes and handler patterns
  (see :mod:`repro.workload.tasks`), or one of the paper's named
  applications.
* :class:`Probes` — which observability-bus topics the campaign runner
  streams/collects for the run.

:func:`compose` resolves a :class:`~repro.campaign.spec.ScenarioSpec` into
a :class:`Composition` of those four parts; ``Composition.build`` assembles
the runnable :class:`ScenarioBuild` and ``Composition.describe`` renders the
resolved parts as a canonical-JSON-able document (the ``repro describe``
verb).  The composition layer is a pure refactor of the old builders: the
event streams and metrics it produces are byte-identical (pinned by
``tests/campaign/test_golden_streams.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign.spec import KERNELS, ScenarioSpec, SpecError
from repro.core.simapi import SimApi
from repro.sysc.kernel import Simulator
from repro.sysc.time import SimTime

#: Hardware sets a scenario can run on.
PLATFORM_KINDS = ("bare", "rtc", "i8051")


@dataclass(frozen=True)
class Platform:
    """The BFM hardware set a scenario runs on.

    ``bare`` is a naked DES simulator (the kernel generates its own tick);
    ``rtc`` adds a BFM :class:`~repro.bfm.rtc.RealTimeClock` whose tick
    signal drives the kernel's dispatch process; ``i8051`` is the paper's
    full Fig. 5 BFM — bus driver, memory controller, interrupt controller,
    RTC, serial/parallel I/O and the LCD/keypad/SSD peripherals — assembled
    by :class:`~repro.app.framework.CoSimulationFramework`.
    """

    kind: str = "bare"
    tick_ms: float = 1.0
    #: i8051 only: the LCD access period (the Table 2 speed knob).
    bfm_access_period_ms: int = 10
    #: i8051 only: whether the GUI widgets (and their host cost) attach.
    gui_enabled: bool = False

    def validate(self) -> "Platform":
        if self.kind not in PLATFORM_KINDS:
            raise SpecError(
                f"unknown platform kind {self.kind!r} "
                f"(choose from {PLATFORM_KINDS})"
            )
        return self

    def describe(self) -> Dict[str, Any]:
        """The resolved hardware set, JSON-safe."""
        document: Dict[str, Any] = {"kind": self.kind, "tick_ms": self.tick_ms}
        if self.kind == "rtc":
            document["controllers"] = ["rtc"]
        elif self.kind == "i8051":
            from repro.bfm.i8051 import BFM_CONTROLLERS, BFM_PERIPHERALS

            document.update(
                controllers=list(BFM_CONTROLLERS),
                peripherals=list(BFM_PERIPHERALS),
                bfm_access_period_ms=self.bfm_access_period_ms,
                gui_enabled=self.gui_enabled,
            )
        return document

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def create_simulator(self, name: str) -> Simulator:
        """The DES simulator every platform kind starts from."""
        return Simulator(name)

    def create_rtc(self, simulator: Simulator):
        """The BFM real-time clock of an ``rtc`` platform."""
        from repro.bfm.rtc import RealTimeClock

        return RealTimeClock(simulator, resolution=SimTime.ms(self.tick_ms))


@dataclass(frozen=True)
class KernelProfile:
    """Which kernel model runs, and how it is configured."""

    model: str = "tkernel"
    tick_ms: float = 1.0
    #: Round-robin time slice in ticks (rtkspec1 only).
    time_slice_ticks: int = 4

    def validate(self) -> "KernelProfile":
        if self.model not in KERNELS:
            raise SpecError(
                f"unknown kernel model {self.model!r} (choose from {KERNELS})"
            )
        return self

    def describe(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {"model": self.model, "tick_ms": self.tick_ms}
        if self.model == "rtkspec1":
            document["time_slice_ticks"] = self.time_slice_ticks
        return document

    def instantiate(
        self,
        simulator: Simulator,
        user_main: Optional[Callable] = None,
        tick_signal: Any = None,
    ):
        """Build the configured kernel model on *simulator*.

        ``user_main`` is the T-Kernel initial-task body (tkernel only);
        ``tick_signal`` hands tick generation to a platform clock.
        """
        if self.model == "tkernel":
            from repro.tkernel import TKernelOS

            return TKernelOS(
                simulator,
                user_main=user_main,
                system_tick=SimTime.ms(self.tick_ms),
                tick_signal=tick_signal,
            )
        from repro.rtkspec.base import kernel_model_class

        cls = kernel_model_class(self.model)
        if self.model == "rtkspec1":
            return cls(
                simulator,
                system_tick=SimTime.ms(self.tick_ms),
                time_slice_ticks=self.time_slice_ticks,
            )
        return cls(simulator, system_tick=SimTime.ms(self.tick_ms))


@dataclass(frozen=True)
class Probes:
    """Observability-bus sink wiring for the run.

    ``topics`` are the bus topics the campaign runner's event sinks
    (streaming JSONL writer or in-memory collector) subscribe to.  The
    default — the ``sched`` topic alone — is the artifact contract every
    stored cache entry and shard stream is built on, so compositions only
    add topics, never remove ``sched`` — and a workload that does add
    topics opts out of result-store caching (the runner skips the store
    fill, so its runs always simulate live; see ``run_spec``).
    """

    topics: Tuple[str, ...] = ("sched",)

    def validate(self) -> "Probes":
        if "sched" not in self.topics:
            raise SpecError("probes must keep the 'sched' topic (artifact contract)")
        return self

    def describe(self) -> Dict[str, Any]:
        return {"topics": list(self.topics)}


@dataclass
class ScenarioBuild:
    """A fully-wired scenario, ready for the runner to execute."""

    simulator: Simulator
    api: SimApi
    kernel_statistics: Callable[[], Dict[str, Any]]
    workload_metrics: Callable[[], Dict[str, Any]]
    probes: Probes = field(default_factory=Probes)


class Workload:
    """Base class of the workload component: what the software does.

    Subclasses declare their registry ``name``, the kernel models they can
    run on, and implement :meth:`resolve` (the declarative parameter view
    behind ``repro describe``) and :meth:`build` (the wiring).
    """

    #: Workload-family key (matches ``ScenarioSpec.workload``).
    name: str = ""
    #: Kernel models this workload can run on.
    kernels: Tuple[str, ...] = KERNELS

    def platform_for(self, spec: ScenarioSpec) -> Platform:
        """The hardware set this workload needs for *spec* (default: bare)."""
        return Platform(kind="bare", tick_ms=spec.tick_ms)

    def probes_for(self, spec: ScenarioSpec) -> Probes:
        """The bus topics the runner should record (default: ``sched``)."""
        return Probes()

    def resolve(self, spec: ScenarioSpec) -> Dict[str, Any]:
        """The fully-resolved workload parameters of *spec*, JSON-safe."""
        raise NotImplementedError

    def build(self, spec: ScenarioSpec, composition: "Composition") -> ScenarioBuild:
        """Wire the workload onto the composition's platform and kernel."""
        raise NotImplementedError


#: name -> workload component instance.
_WORKLOAD_COMPONENTS: Dict[str, Workload] = {}


def register_workload(component) -> Any:
    """Register a workload component under its ``name`` (last wins).

    Accepts an instance or a :class:`Workload` subclass (instantiated here),
    so it doubles as a class decorator; the decorated name stays bound to
    the class.
    """
    instance = component() if isinstance(component, type) else component
    if not instance.name:
        raise SpecError("workload component needs a non-empty name")
    _WORKLOAD_COMPONENTS[instance.name] = instance
    return component


def workload_component(name: str) -> Workload:
    """The registered workload component called *name*."""
    try:
        return _WORKLOAD_COMPONENTS[name]
    except KeyError:
        known = ", ".join(sorted(_WORKLOAD_COMPONENTS))
        raise SpecError(
            f"no workload component {name!r} (known: {known})"
        ) from None


def workload_names() -> List[str]:
    """All registered workload component names, sorted."""
    return sorted(_WORKLOAD_COMPONENTS)


@dataclass(frozen=True)
class Composition:
    """One scenario, factored into its four orthogonal parts."""

    platform: Platform
    kernel: KernelProfile
    workload: Workload
    probes: Probes

    def build(self, spec: ScenarioSpec) -> ScenarioBuild:
        """Assemble the runnable scenario the composition describes."""
        return self.workload.build(spec, self)

    def describe(self, spec: ScenarioSpec) -> Dict[str, Any]:
        """The composed parts with every parameter resolved, JSON-safe."""
        return {
            "platform": self.platform.describe(),
            "kernel": self.kernel.describe(),
            "workload": {"name": self.workload.name, **self.workload.resolve(spec)},
            "probes": self.probes.describe(),
        }


def compose(spec: ScenarioSpec) -> Composition:
    """Resolve *spec* into its Platform/KernelProfile/Workload/Probes parts."""
    spec.validate()
    workload = workload_component(spec.workload)
    if spec.kernel not in workload.kernels:
        raise SpecError(
            f"workload {workload.name!r} cannot run on kernel {spec.kernel!r} "
            f"(supported: {workload.kernels})"
        )
    return Composition(
        platform=workload.platform_for(spec).validate(),
        kernel=KernelProfile(
            model=spec.kernel,
            tick_ms=spec.tick_ms,
            time_slice_ticks=spec.time_slice_ticks,
        ).validate(),
        workload=workload,
        probes=workload.probes_for(spec).validate(),
    )
