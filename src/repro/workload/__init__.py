"""repro.workload — the composable scenario plane.

Scenarios are compositions of four orthogonal parts — :class:`Platform`
(BFM hardware set), :class:`KernelProfile` (kernel model + knobs),
:class:`Workload` (declarative task sets / named applications) and
:class:`Probes` (obs-bus sink wiring) — resolved from a
:class:`~repro.campaign.spec.ScenarioSpec` by :func:`compose`.

:mod:`repro.workload.tasks` is the declarative task model (arrival laws,
compute bursts, service-call mixes); :mod:`repro.workload.families` expands
a small seeded :class:`FamilySpec` into unbounded distinct-but-reproducible
scenario specs that flow through the grid unchanged.
"""

from repro.workload.components import (
    Composition,
    KernelProfile,
    PLATFORM_KINDS,
    Platform,
    Probes,
    ScenarioBuild,
    Workload,
    compose,
    register_workload,
    workload_component,
    workload_names,
)
from repro.workload.tasks import (
    ARRIVAL_LAWS,
    SERVICE_CALLS,
    CyclicDef,
    TaskDef,
    parse_taskset,
)
from repro.workload.families import (
    FAMILY_SCHEMA,
    FamilySpec,
    expand_family,
    family_member,
    load_family_file,
)
from repro.workload.knobs import canonical_json_value, flatten_knobs

# Importing the builtins registers every built-in workload component.
from repro.workload import builtins as _builtins  # noqa: F401

__all__ = [
    "ARRIVAL_LAWS",
    "Composition",
    "CyclicDef",
    "FAMILY_SCHEMA",
    "FamilySpec",
    "KernelProfile",
    "PLATFORM_KINDS",
    "Platform",
    "Probes",
    "SERVICE_CALLS",
    "ScenarioBuild",
    "TaskDef",
    "Workload",
    "canonical_json_value",
    "compose",
    "expand_family",
    "family_member",
    "flatten_knobs",
    "load_family_file",
    "parse_taskset",
    "register_workload",
    "workload_component",
    "workload_names",
]
