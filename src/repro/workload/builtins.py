"""The built-in workload components.

Every workload family the registry knows is one :class:`Workload` component
here: the paper's named applications (quickstart, sync tour, the Fig. 5
video-game framework and its energy-profile variant), the RTK-Spec
scheduler comparison, the legacy seeded ``synthetic`` periodic sets, and
the fully-declarative ``generated`` family the
:mod:`repro.workload.families` generator emits.

These are refactors of the old monolithic ``campaign/registry.py`` builder
functions into the Platform × KernelProfile × Workload × Probes component
model; their event streams and metrics are byte-identical to the
pre-refactor builders (pinned by ``tests/campaign/test_golden_streams.py``).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.campaign.spec import ScenarioSpec, SpecError
from repro.core.events import ExecutionContext
from repro.sysc.time import SimTime
from repro.workload.components import (
    Composition,
    Platform,
    ScenarioBuild,
    Workload,
    register_workload,
)
from repro.workload.tasks import install_rtk_tasks, parse_taskset, \
    tkernel_user_main


@register_workload
class QuickstartWorkload(Workload):
    """Producer/consumer pairs over semaphores plus a cyclic heartbeat."""

    name = "quickstart"
    kernels = ("tkernel",)

    def resolve(self, spec: ScenarioSpec) -> Dict[str, Any]:
        pairs = max(1, spec.task_count // 2)
        return {
            "pairs": pairs,
            "items": int(spec.extra.get("items", 5)),
            "produce_period_ms": spec.period_ms,
            "consume_ms": max(spec.period_ms / 3.0, 0.5),
            "heartbeat_ms": int(spec.extra.get("heartbeat_ms", 10)),
            "tasks": [
                name
                for pair in range(pairs)
                for name in (f"producer{pair}", f"consumer{pair}")
            ],
            "handlers": ["heartbeat"],
        }

    def build(self, spec: ScenarioSpec, composition: Composition) -> ScenarioBuild:
        # Wire exactly the parameters resolve() advertises: `repro describe`
        # and the run can never drift apart.
        params = self.resolve(spec)
        items = params["items"]
        heartbeat_ms = params["heartbeat_ms"]
        pairs = params["pairs"]
        produce_period_ms = params["produce_period_ms"]
        consume_ms = params["consume_ms"]
        counters = {"produced": 0, "consumed": 0, "heartbeats": 0}

        def user_main(kernel):
            api = kernel.api
            for pair in range(pairs):
                semid = yield from kernel.tk_cre_sem(
                    isemcnt=0, maxsem=items, name=f"items{pair}"
                )

                def producer(stacd, exinf, semid=semid):
                    for _ in range(items):
                        yield from api.sim_wait(
                            duration=SimTime.ms(produce_period_ms), label="produce"
                        )
                        yield from kernel.tk_sig_sem(semid)
                        counters["produced"] += 1

                def consumer(stacd, exinf, semid=semid):
                    for _ in range(items):
                        yield from kernel.tk_wai_sem(semid)
                        yield from api.sim_wait(
                            duration=SimTime.ms(consume_ms), label="consume"
                        )
                        counters["consumed"] += 1

                producer_id = yield from kernel.tk_cre_tsk(
                    producer, itskpri=10 + pair, name=f"producer{pair}"
                )
                consumer_id = yield from kernel.tk_cre_tsk(
                    consumer, itskpri=5 + pair, name=f"consumer{pair}"
                )
                yield from kernel.tk_sta_tsk(producer_id)
                yield from kernel.tk_sta_tsk(consumer_id)

            def heartbeat(exinf):
                yield from api.sim_wait(
                    duration=SimTime.us(200), context=ExecutionContext.HANDLER
                )
                counters["heartbeats"] += 1

            cycid = yield from kernel.tk_cre_cyc(
                heartbeat, cyctim=heartbeat_ms, name="heartbeat"
            )
            yield from kernel.tk_sta_cyc(cycid)

        simulator = composition.platform.create_simulator(spec.name)
        kernel = composition.kernel.instantiate(simulator, user_main=user_main)
        return ScenarioBuild(
            simulator=simulator,
            api=kernel.api,
            kernel_statistics=kernel.statistics,
            workload_metrics=lambda: dict(counters),
            probes=composition.probes,
        )


@register_workload
class SyncTourWorkload(Workload):
    """The sync-primitives tour: flags, mutexes, mailboxes, buffers, pools."""

    name = "sync_tour"
    kernels = ("tkernel",)

    def resolve(self, spec: ScenarioSpec) -> Dict[str, Any]:
        return {
            "samples": int(spec.extra.get("samples", 4)),
            "sample_ms": float(spec.extra.get("sample_ms", 2.0)),
            "tasks": ["sensor", "processor", "supervisor"],
            "objects": ["eventflag", "mutex", "mailbox", "msgbuf", "mempool"],
        }

    def build(self, spec: ScenarioSpec, composition: Composition) -> ScenarioBuild:
        from repro.tkernel import TA_INHERIT, TA_WMUL, TWF_ANDW

        params = self.resolve(spec)
        samples = params["samples"]
        sample_ms = params["sample_ms"]
        counters = {"samples_sent": 0, "samples_processed": 0, "supervised": 0}

        def user_main(kernel):
            api = kernel.api
            flag_id = yield from kernel.tk_cre_flg(
                iflgptn=0, flgatr=TA_WMUL, name="phases"
            )
            mutex_id = yield from kernel.tk_cre_mtx(mtxatr=TA_INHERIT, name="shared")
            mailbox_id = yield from kernel.tk_cre_mbx(name="commands")
            buffer_id = yield from kernel.tk_cre_mbf(
                bufsz=64, maxmsz=16, name="samples"
            )
            pool_id = yield from kernel.tk_cre_mpf(mpfcnt=3, blfsz=32, name="pool")

            def sensor(stacd, exinf):
                for sample in range(samples):
                    yield from api.sim_wait(
                        duration=SimTime.ms(sample_ms), label="sample"
                    )
                    yield from kernel.tk_snd_mbf(buffer_id, ("sample", sample), size=4)
                    yield from kernel.tk_set_flg(flag_id, 0b01)
                    counters["samples_sent"] += 1
                yield from kernel.tk_snd_mbx(mailbox_id, "shutdown")
                yield from kernel.tk_set_flg(flag_id, 0b10)

            def processor(stacd, exinf):
                while True:
                    ercd, payload, size = yield from kernel.tk_rcv_mbf(
                        buffer_id, tmout=50
                    )
                    if ercd != 0:
                        return
                    yield from kernel.tk_loc_mtx(mutex_id)
                    yield from api.sim_wait(duration=SimTime.ms(1), label="process")
                    yield from kernel.tk_unl_mtx(mutex_id)
                    ercd, block = yield from kernel.tk_get_mpf(pool_id)
                    counters["samples_processed"] += 1
                    yield from kernel.tk_rel_mpf(pool_id, block)

            def supervisor(stacd, exinf):
                yield from kernel.tk_wai_flg(flag_id, 0b11, TWF_ANDW)
                yield from kernel.tk_rcv_mbx(mailbox_id)
                counters["supervised"] += 1

            for name, fn, pri in [("sensor", sensor, 10), ("processor", processor, 8),
                                  ("supervisor", supervisor, 5)]:
                task_id = yield from kernel.tk_cre_tsk(fn, itskpri=pri, name=name)
                yield from kernel.tk_sta_tsk(task_id)

        simulator = composition.platform.create_simulator(spec.name)
        kernel = composition.kernel.instantiate(simulator, user_main=user_main)
        return ScenarioBuild(
            simulator=simulator,
            api=kernel.api,
            kernel_statistics=kernel.statistics,
            workload_metrics=lambda: dict(counters),
            probes=composition.probes,
        )


class _FrameworkWorkload(Workload):
    """Shared base of the Fig. 5 co-simulation framework workloads.

    The i8051 platform of these scenarios is monolithic by construction —
    :class:`~repro.app.framework.CoSimulationFramework` wires BFM, kernel,
    application and widgets in one pass — so the composition hands its
    platform and kernel knobs to the framework instead of assembling the
    parts itself.
    """

    name = "videogame"
    kernels = ("tkernel",)

    def platform_for(self, spec: ScenarioSpec) -> Platform:
        return Platform(
            kind="i8051",
            tick_ms=spec.tick_ms,
            bfm_access_period_ms=spec.bfm_access_period_ms,
            gui_enabled=spec.gui_enabled,
        )

    def _render_cycles(self, spec: ScenarioSpec):
        return None

    def resolve(self, spec: ScenarioSpec) -> Dict[str, Any]:
        resolved: Dict[str, Any] = {
            "application": "videogame",
            "lcd_update_period_ms": spec.bfm_access_period_ms,
            "key_period_ms": int(spec.extra.get("key_period_ms", 80)),
            "tasks": ["T1_lcd", "T2_keypad", "T3_ssd", "T4_idle"],
            "handlers": ["H1_cyclic", "H2_alarm", "keypad_isr"],
        }
        render_cycles = self._render_cycles(spec)
        if render_cycles is not None:
            resolved["render_cycles"] = render_cycles
        return resolved

    def build(self, spec: ScenarioSpec, composition: Composition) -> ScenarioBuild:
        from repro.app.framework import CoSimulationFramework, FrameworkConfig

        platform = composition.platform
        params = self.resolve(spec)
        config = FrameworkConfig.from_knobs(
            duration_ms=spec.duration_ms,
            gui_enabled=platform.gui_enabled,
            lcd_update_period_ms=platform.bfm_access_period_ms,
            key_period_ms=params["key_period_ms"],
            render_cycles=params.get("render_cycles"),
            tick_ms=platform.tick_ms,
        )
        framework = CoSimulationFramework(config, name=spec.name)

        def workload_metrics() -> Dict[str, Any]:
            application = framework.application.summary()
            bfm = framework.bfm.access_statistics()
            framework.widgets.battery.update()
            return {
                "frames_rendered": application["frames_rendered"],
                "keys_handled": application["keys_handled"],
                "score": application["score"],
                "bus_accesses": bfm["bus_accesses"],
                "interrupts_raised": bfm["interrupts_raised"],
                "gui_callbacks": framework.widgets.callback_count(),
                "battery_remaining_fraction":
                    framework.widgets.battery.remaining_fraction,
            }

        return ScenarioBuild(
            simulator=framework.simulator,
            api=framework.api,
            kernel_statistics=framework.kernel.statistics,
            workload_metrics=workload_metrics,
            probes=composition.probes,
        )


@register_workload
class VideogameWorkload(_FrameworkWorkload):
    """Full Fig. 5 co-simulation: video game + i8051 BFM + GUI widgets."""

    name = "videogame"


@register_workload
class EnergyProfileWorkload(_FrameworkWorkload):
    """The Fig. 7 energy-distribution variant with a render budget knob."""

    name = "energy_profile"

    def _render_cycles(self, spec: ScenarioSpec):
        return int(spec.extra.get("render_cycles", 400))


@register_workload
class SchedulerComparisonWorkload(Workload):
    """An identical one-shot task set run under the chosen RTK-Spec kernel."""

    name = "scheduler_comparison"
    kernels = ("rtkspec1", "rtkspec2")

    @staticmethod
    def task_set(spec: ScenarioSpec) -> List[Tuple[str, int, float]]:
        """The fixed four-task workload of the scheduler-comparison example,
        extended deterministically when the spec asks for more tasks."""
        base = [
            ("logger", 30, 12.0),
            ("control", 5, 6.0),
            ("comms", 15, 9.0),
            ("background", 40, 15.0),
        ]
        tasks = base[: spec.task_count]
        rng = random.Random(spec.seed)
        while len(tasks) < spec.task_count:
            index = len(tasks)
            tasks.append(
                (f"extra{index}", rng.randrange(5, 45), float(rng.randrange(4, 16)))
            )
        if spec.priorities:
            tasks = [
                (name, priority, execution_ms)
                for (name, _, execution_ms), priority
                in zip(tasks, spec.priorities)
            ]
        return tasks

    def resolve(self, spec: ScenarioSpec) -> Dict[str, Any]:
        return {
            "tasks": [
                {"name": name, "priority": priority, "execution_ms": execution_ms}
                for name, priority, execution_ms in self.task_set(spec)
            ],
        }

    def build(self, spec: ScenarioSpec, composition: Composition) -> ScenarioBuild:
        simulator = composition.platform.create_simulator(spec.name)
        kernel = composition.kernel.instantiate(simulator)
        completions: Dict[str, float] = {}

        def make_body(name: str, execution_ms: float):
            def body():
                yield from kernel.api.sim_wait(
                    duration=SimTime.ms(execution_ms), label=name
                )
                completions[name] = simulator.now.to_ms()

            return body

        for name, priority, execution_ms in self.task_set(spec):
            task = kernel.create_task(
                make_body(name, execution_ms), priority=priority, name=name
            )
            kernel.start_task(task)

        def workload_metrics() -> Dict[str, Any]:
            return {
                "completions": len(completions),
                "completion_times_ms": {
                    name: completions[name] for name in sorted(completions)
                },
                "makespan_ms": max(completions.values()) if completions else None,
            }

        return ScenarioBuild(
            simulator=simulator,
            api=kernel.api,
            kernel_statistics=kernel.statistics,
            workload_metrics=workload_metrics,
            probes=composition.probes,
        )


@register_workload
class SyntheticWorkload(Workload):
    """A seeded synthetic periodic task set on any kernel model.

    Predates the declarative ``generated`` family and stays for spec-hash
    compatibility: existing stored results and the builtin
    ``synthetic-tkernel``/``synthetic-rtk`` scenarios keep their cache keys.
    """

    name = "synthetic"

    @staticmethod
    def task_set(spec: ScenarioSpec) -> List[Tuple[str, int, float, float]]:
        """Draw a periodic task set (name, priority, period_ms, execution_ms)
        from the spec's seed.  Same seed, same set — on every host."""
        rng = random.Random(spec.seed)
        tasks = []
        for index in range(spec.task_count):
            period = spec.period_ms * rng.choice((1, 2, 4))
            execution = max(0.5, round(period * rng.uniform(0.1, 0.4), 3))
            if spec.priorities:
                priority = spec.priorities[index]
            else:
                priority = 5 + rng.randrange(0, 40)
            tasks.append((f"syn{index}", priority, period, execution))
        return tasks

    def resolve(self, spec: ScenarioSpec) -> Dict[str, Any]:
        return {
            "jobs": int(spec.extra.get("jobs", 3)),
            "tasks": [
                {"name": name, "priority": priority, "period_ms": period_ms,
                 "execution_ms": execution_ms}
                for name, priority, period_ms, execution_ms in self.task_set(spec)
            ],
        }

    def build(self, spec: ScenarioSpec, composition: Composition) -> ScenarioBuild:
        params = self.resolve(spec)
        jobs = params["jobs"]
        tasks = [
            (task["name"], task["priority"], task["period_ms"],
             task["execution_ms"])
            for task in params["tasks"]
        ]
        counters = {"jobs_completed": 0}

        if spec.kernel == "tkernel":
            def user_main(kernel):
                api = kernel.api

                def make_body(period_ms: float, execution_ms: float):
                    def body(stacd, exinf):
                        for _ in range(jobs):
                            yield from api.sim_wait(
                                duration=SimTime.ms(execution_ms), label="job"
                            )
                            counters["jobs_completed"] += 1
                            yield from kernel.tk_dly_tsk(int(period_ms))

                    return body

                for name, priority, period_ms, execution_ms in tasks:
                    task_id = yield from kernel.tk_cre_tsk(
                        make_body(period_ms, execution_ms),
                        itskpri=min(priority, 140),
                        name=name,
                    )
                    yield from kernel.tk_sta_tsk(task_id)

            simulator = composition.platform.create_simulator(spec.name)
            kernel = composition.kernel.instantiate(simulator, user_main=user_main)
            return ScenarioBuild(
                simulator=simulator,
                api=kernel.api,
                kernel_statistics=kernel.statistics,
                workload_metrics=lambda: dict(counters),
                probes=composition.probes,
            )

        simulator = composition.platform.create_simulator(spec.name)
        kernel = composition.kernel.instantiate(simulator)

        def make_body(period_ms: float, execution_ms: float):
            def body():
                for _ in range(jobs):
                    yield from kernel.api.sim_wait(
                        duration=SimTime.ms(execution_ms), label="job"
                    )
                    counters["jobs_completed"] += 1
                    yield from kernel.delay(SimTime.ms(period_ms))

            return body

        for name, priority, period_ms, execution_ms in tasks:
            task = kernel.create_task(
                make_body(period_ms, execution_ms), priority=priority, name=name
            )
            kernel.start_task(task)

        return ScenarioBuild(
            simulator=simulator,
            api=kernel.api,
            kernel_statistics=kernel.statistics,
            workload_metrics=lambda: dict(counters),
            probes=composition.probes,
        )


@register_workload
class GeneratedWorkload(Workload):
    """A fully-declarative task-set workload, usually family-generated.

    The spec's ``extra['tasks']`` (a list of
    :class:`~repro.workload.tasks.TaskDef` documents) and optional
    ``extra['cyclics']`` carry the whole task graph as plain JSON; the
    optional ``extra['platform']`` knob picks ``bare`` (default) or ``rtc``
    (kernel tick driven by a BFM real-time clock, tkernel only).
    """

    name = "generated"

    def _platform_kind(self, spec: ScenarioSpec) -> str:
        """Cheap platform/shape validation — no per-task parsing.

        ``compose()`` calls this through :meth:`platform_for` while
        :meth:`build`/:meth:`resolve` do the full task-set parse, so a
        scenario build parses the declarative documents exactly once.
        """
        tasks = spec.extra.get("tasks", ())
        if not isinstance(tasks, (list, tuple)) or not tasks:
            raise SpecError("generated workload needs a non-empty 'tasks' list")
        platform_kind = spec.extra.get("platform", "bare")
        if platform_kind not in ("bare", "rtc"):
            raise SpecError(
                f"generated workload platform must be 'bare' or 'rtc', "
                f"got {platform_kind!r}"
            )
        if platform_kind == "rtc" and spec.kernel != "tkernel":
            raise SpecError(
                f"platform 'rtc' needs kernel 'tkernel', not {spec.kernel!r}"
            )
        return platform_kind

    def _taskset(self, spec: ScenarioSpec):
        tasks, cyclics = parse_taskset(
            spec.extra.get("tasks", ()), spec.extra.get("cyclics", ())
        )
        if spec.kernel != "tkernel":
            if cyclics:
                raise SpecError(
                    "cyclic handlers need kernel 'tkernel', "
                    f"not {spec.kernel!r}"
                )
            for task in tasks:
                if task.services:
                    raise SpecError(
                        f"task {task.name!r} has a service-call mix, which "
                        f"needs kernel 'tkernel', not {spec.kernel!r}"
                    )
                # The tkernel interpreter clamps priorities into the ITRON
                # range; the minimal RTK API passes them straight to the
                # scheduler, whose ready bitmap covers [0, 256).
                if task.priority >= 256:
                    raise SpecError(
                        f"task {task.name!r}: priority {task.priority} is "
                        f"outside the RTK-Spec scheduler range [1, 256)"
                    )
        return tasks, cyclics

    def platform_for(self, spec: ScenarioSpec) -> Platform:
        return Platform(kind=self._platform_kind(spec), tick_ms=spec.tick_ms)

    def resolve(self, spec: ScenarioSpec) -> Dict[str, Any]:
        tasks, cyclics = self._taskset(spec)
        return {
            "seed": spec.seed,
            "tasks": [task.to_dict() for task in tasks],
            "cyclics": [cyclic.to_dict() for cyclic in cyclics],
        }

    def build(self, spec: ScenarioSpec, composition: Composition) -> ScenarioBuild:
        tasks, cyclics = self._taskset(spec)
        counters = {"jobs_completed": 0, "service_rounds": 0, "handler_fires": 0}

        simulator = composition.platform.create_simulator(spec.name)
        if spec.kernel == "tkernel":
            tick_signal = None
            if composition.platform.kind == "rtc":
                tick_signal = composition.platform.create_rtc(simulator).tick_signal
            kernel = composition.kernel.instantiate(
                simulator,
                user_main=tkernel_user_main(tasks, cyclics, spec.seed, counters),
                tick_signal=tick_signal,
            )
        else:
            kernel = composition.kernel.instantiate(simulator)
            install_rtk_tasks(kernel, tasks, spec.seed, counters)

        return ScenarioBuild(
            simulator=simulator,
            api=kernel.api,
            kernel_statistics=kernel.statistics,
            workload_metrics=lambda: dict(counters),
            probes=composition.probes,
        )
