"""Declarative task sets: arrival laws, compute bursts, service-call mixes.

A generated scenario's software is a list of :class:`TaskDef` documents
(plus optional :class:`CyclicDef` handler patterns) carried in the spec's
``extra["tasks"]`` knob — plain JSON, so task graphs flow through
``spec_hash``, the result store and the shard planner exactly like every
other spec field.

Each task releases a finite number of *jobs*.  A job is: a compute burst
(``execution_ms`` of SIM_Wait), an optional service-call mix (semaphore,
event-flag or mailbox round-trips on shared kernel objects — deadlock-free
by construction because every blocking call is preceded by its own post),
then the arrival gap to the next release drawn from the task's arrival law:

=============  =====================================================
``periodic``   fixed ``period_ms`` gap
``jittered``   ``period_ms`` plus a seeded uniform jitter in
               ``[0, jitter_ms]``
``sporadic``   a seeded uniform gap in ``[min_gap_ms, max_gap_ms]``
``bursty``     ``burst_size`` releases ``intra_gap_ms`` apart, then a
               ``burst_gap_ms`` pause
=============  =====================================================

All randomness is per-task ``random.Random`` instances seeded from the
spec's seed via :func:`~repro.campaign.spec.derive_seed` — no wall clock,
no global RNG, so the same spec replays the same trajectory on every host.

Two interpreters install a task set on a live kernel:
:func:`tkernel_user_main` (RTK-Spec TRON service calls, cyclic handlers)
and :func:`install_rtk_tasks` (the minimal RTK-Spec I/II task API, compute
and delays only).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.campaign.spec import SpecError, derive_seed
from repro.sysc.time import SimTime

#: Supported arrival laws.
ARRIVAL_LAWS = ("periodic", "jittered", "sporadic", "bursty")

#: Service-call mixes a task's job can exercise (RTK-Spec TRON only).
SERVICE_CALLS = ("sem", "flag", "mbx")

#: Fields each arrival law resolves (beyond the common set).
_LAW_FIELDS = {
    "periodic": ("period_ms",),
    "jittered": ("period_ms", "jitter_ms"),
    "sporadic": ("min_gap_ms", "max_gap_ms"),
    "bursty": ("burst_size", "intra_gap_ms", "burst_gap_ms"),
}


@dataclass(frozen=True)
class TaskDef:
    """One declarative task: arrival law + compute burst + service mix."""

    name: str
    priority: int = 10
    execution_ms: float = 1.0
    law: str = "periodic"
    jobs: int = 3
    period_ms: float = 10.0
    jitter_ms: float = 2.0
    min_gap_ms: float = 5.0
    max_gap_ms: float = 20.0
    burst_size: int = 3
    intra_gap_ms: float = 1.0
    burst_gap_ms: float = 20.0
    services: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Validation & serialization
    # ------------------------------------------------------------------
    def validate(self) -> "TaskDef":
        # Type checks come first — a mistyped task document must surface as
        # a one-line SpecError, never as a TypeError from a comparison.
        def is_number(value) -> bool:
            return isinstance(value, (int, float)) and not isinstance(value, bool)

        def is_int(value) -> bool:
            return isinstance(value, int) and not isinstance(value, bool)

        problems: List[str] = []
        if not isinstance(self.name, str) or not self.name:
            problems.append("name must be a non-empty string")
        if self.law not in ARRIVAL_LAWS:
            problems.append(
                f"unknown arrival law {self.law!r} (choose from {ARRIVAL_LAWS})"
            )
        if not is_int(self.priority) or self.priority < 1:
            problems.append("priority must be a positive integer")
        if not is_number(self.execution_ms) or self.execution_ms <= 0:
            problems.append("execution_ms must be a positive number")
        if not is_int(self.jobs) or self.jobs < 1:
            problems.append("jobs must be an integer, at least 1")
        if self.law in ("periodic", "jittered") and (
            not is_number(self.period_ms) or self.period_ms <= 0
        ):
            problems.append("period_ms must be a positive number")
        if self.law == "jittered" and (
            not is_number(self.jitter_ms) or self.jitter_ms < 0
        ):
            problems.append("jitter_ms must be a non-negative number")
        if self.law == "sporadic" and not (
            is_number(self.min_gap_ms) and is_number(self.max_gap_ms)
            and 0 < self.min_gap_ms <= self.max_gap_ms
        ):
            problems.append("sporadic needs 0 < min_gap_ms <= max_gap_ms")
        if self.law == "bursty" and not (
            is_int(self.burst_size) and self.burst_size >= 1
            and is_number(self.intra_gap_ms) and self.intra_gap_ms > 0
            and is_number(self.burst_gap_ms) and self.burst_gap_ms > 0
        ):
            problems.append(
                "bursty needs burst_size >= 1 and positive intra/burst gaps"
            )
        if not isinstance(self.services, (list, tuple)):
            problems.append(f"services must be a list, got {self.services!r}")
        else:
            unknown_services = [s for s in self.services if s not in SERVICE_CALLS]
            if unknown_services:
                problems.append(
                    f"unknown service calls {unknown_services!r} "
                    f"(choose from {SERVICE_CALLS})"
                )
        if problems:
            raise SpecError(f"invalid task {self.name!r}: " + "; ".join(problems))
        return self

    def to_dict(self) -> Dict[str, Any]:
        """A minimal JSON-safe document: common fields + the law's fields."""
        document: Dict[str, Any] = {
            "name": self.name,
            "priority": self.priority,
            "execution_ms": self.execution_ms,
            "law": self.law,
            "jobs": self.jobs,
        }
        for field_name in _LAW_FIELDS.get(self.law, ()):
            document[field_name] = getattr(self, field_name)
        if self.services:
            document["services"] = list(self.services)
        return document

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskDef":
        if not isinstance(data, Mapping):
            raise SpecError(f"task must be a JSON object, got {type(data).__name__}")
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown task fields: {sorted(unknown)}")
        if "name" not in data:
            raise SpecError("task needs a 'name'")
        payload = dict(data)
        if "services" in payload:
            services = payload["services"]
            if not isinstance(services, (list, tuple)):
                raise SpecError(
                    f"task {payload['name']!r}: services must be a list"
                )
            payload["services"] = tuple(services)
        return cls(**payload).validate()

    # ------------------------------------------------------------------
    # Arrival law
    # ------------------------------------------------------------------
    def gap_ms(self, rng: random.Random, job_index: int) -> float:
        """The seeded arrival gap after job *job_index* (milliseconds)."""
        if self.law == "periodic":
            return self.period_ms
        if self.law == "jittered":
            return round(self.period_ms + self.jitter_ms * rng.random(), 3)
        if self.law == "sporadic":
            return round(rng.uniform(self.min_gap_ms, self.max_gap_ms), 3)
        # bursty: short intra-burst gaps, a long pause after each burst
        if (job_index + 1) % self.burst_size == 0:
            return self.burst_gap_ms
        return self.intra_gap_ms


@dataclass(frozen=True)
class CyclicDef:
    """A periodic handler pattern (RTK-Spec TRON cyclic handler)."""

    name: str
    period_ms: int = 10
    execution_us: int = 100

    def validate(self) -> "CyclicDef":
        if not isinstance(self.name, str) or not self.name:
            raise SpecError("cyclic handler needs a non-empty name")
        for field_name in ("period_ms", "execution_us"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise SpecError(
                    f"cyclic {self.name!r}: {field_name} must be an "
                    f"integer, at least 1"
                )
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "period_ms": self.period_ms,
            "execution_us": self.execution_us,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CyclicDef":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"cyclic must be a JSON object, got {type(data).__name__}"
            )
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown cyclic fields: {sorted(unknown)}")
        if "name" not in data:
            raise SpecError("cyclic needs a 'name'")
        return cls(**dict(data)).validate()


def parse_taskset(
    tasks: Sequence[Mapping[str, Any]],
    cyclics: Sequence[Mapping[str, Any]] = (),
) -> Tuple[List[TaskDef], List[CyclicDef]]:
    """Parse and validate the declarative ``extra['tasks']``/``['cyclics']``."""
    if not isinstance(tasks, (list, tuple)) or not tasks:
        raise SpecError("generated workload needs a non-empty 'tasks' list")
    if not isinstance(cyclics, (list, tuple)):
        raise SpecError("'cyclics' must be a list")
    parsed_tasks = [TaskDef.from_dict(task) for task in tasks]
    names = [task.name for task in parsed_tasks]
    if len(set(names)) != len(names):
        raise SpecError(f"duplicate task names in task set: {names!r}")
    return parsed_tasks, [CyclicDef.from_dict(cyclic) for cyclic in cyclics]


# ----------------------------------------------------------------------
# Interpreters
# ----------------------------------------------------------------------
def tkernel_user_main(
    tasks: Sequence[TaskDef],
    cyclics: Sequence[CyclicDef],
    seed: int,
    counters: Dict[str, int],
):
    """An RTK-Spec TRON initial task installing the declarative task set.

    Shared service objects (one semaphore, one event flag, one mailbox) are
    created once when any task's mix needs them; every job's mix is a
    self-balancing round-trip (post before block), so generated task graphs
    cannot deadlock regardless of priorities or arrival interleavings.
    """
    from repro.core.events import ExecutionContext

    need_sem = any("sem" in task.services for task in tasks)
    need_flag = any("flag" in task.services for task in tasks)
    need_mbx = any("mbx" in task.services for task in tasks)

    def user_main(kernel):
        api = kernel.api
        sem_id = flag_id = mbx_id = None
        if need_sem:
            sem_id = yield from kernel.tk_cre_sem(
                isemcnt=0, maxsem=32767, name="wl.sem"
            )
        if need_flag:
            flag_id = yield from kernel.tk_cre_flg(iflgptn=0, name="wl.flg")
        if need_mbx:
            mbx_id = yield from kernel.tk_cre_mbx(name="wl.mbx")

        def make_body(task: TaskDef, task_index: int):
            rng = random.Random(derive_seed(seed, task_index, task.name))

            def body(stacd, exinf):
                for job in range(task.jobs):
                    yield from api.sim_wait(
                        duration=SimTime.ms(task.execution_ms), label=task.name
                    )
                    for service in task.services:
                        if service == "sem":
                            yield from kernel.tk_sig_sem(sem_id)
                            yield from kernel.tk_wai_sem(sem_id)
                        elif service == "flag":
                            yield from kernel.tk_set_flg(flag_id, 0b1)
                            yield from kernel.tk_clr_flg(flag_id, 0)
                        elif service == "mbx":
                            yield from kernel.tk_snd_mbx(mbx_id, (task.name, job))
                            yield from kernel.tk_rcv_mbx(mbx_id)
                        counters["service_rounds"] += 1
                    counters["jobs_completed"] += 1
                    if job + 1 < task.jobs:
                        gap = max(1, int(round(task.gap_ms(rng, job))))
                        yield from kernel.tk_dly_tsk(gap)

            return body

        for task_index, task in enumerate(tasks):
            task_id = yield from kernel.tk_cre_tsk(
                make_body(task, task_index),
                itskpri=min(task.priority, 140),
                name=task.name,
            )
            yield from kernel.tk_sta_tsk(task_id)

        def make_handler(cyclic: CyclicDef):
            def handler(exinf):
                yield from api.sim_wait(
                    duration=SimTime.us(cyclic.execution_us),
                    context=ExecutionContext.HANDLER,
                )
                counters["handler_fires"] += 1

            return handler

        for cyclic in cyclics:
            cyc_id = yield from kernel.tk_cre_cyc(
                make_handler(cyclic), cyctim=cyclic.period_ms, name=cyclic.name
            )
            yield from kernel.tk_sta_cyc(cyc_id)

    return user_main


def install_rtk_tasks(
    kernel,
    tasks: Sequence[TaskDef],
    seed: int,
    counters: Dict[str, int],
) -> None:
    """Install the declarative task set through the minimal RTK-Spec API.

    RTK-Spec I/II expose only create/start/delay, so tasks must carry no
    service-call mix (enforced by the generated workload's resolver).
    """

    def make_body(task: TaskDef, task_index: int):
        rng = random.Random(derive_seed(seed, task_index, task.name))

        def body():
            for job in range(task.jobs):
                yield from kernel.api.sim_wait(
                    duration=SimTime.ms(task.execution_ms), label=task.name
                )
                counters["jobs_completed"] += 1
                if job + 1 < task.jobs:
                    yield from kernel.delay(SimTime.ms(task.gap_ms(rng, job)))

        return body

    for task_index, task in enumerate(tasks):
        handle = kernel.create_task(
            make_body(task, task_index), priority=task.priority, name=task.name
        )
        kernel.start_task(handle)
